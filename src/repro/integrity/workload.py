"""The SDC-defense workload behind ``repro integrity --smoke``.

A deliberately under-capacity single-phase Poisson serving run (no
admission pressure — the point is the *attestation* arc, not shedding)
executed in five scenarios:

1. **Clean seed matrix** — checks enabled, no chaos, several seeds:
   every batch is attested, zero trips.  This is the false-positive
   gate the noise-calibrated thresholds are accountable to.
2. **Parity** — the same run with checks disabled must produce
   bit-identical outputs and decisions: attestation observes, it never
   perturbs.
3. **Replay** — two checks-enabled runs are bit-identical (calibration
   and checksum programming draw from seeded streams only).
4. **Injected SDC** — a crash-free chaos plan of ``silent_corrupt``
   injections (finite bias/scale/sign-flip corruption that sails
   through the serving layer's non-finite gate).  Every injection must
   trip the checksum, recover via re-execution (one-shot chaos does
   not repeat), and show up attested in the post-run audit.
5. **Escalation** — persistent analog corruption
   (:meth:`~repro.arch.weight_bank.WeightBank.upset_cells` — realized
   levels drift with no stuck-cell signature, so worker health stays
   green).  Re-execution reproduces the bad sums, the digital spare
   confirms the data path is wrong, and the batch escalates as an
   :class:`~repro.errors.IntegrityFault`: breaker trips, rollup
   records the SDC rate, and the half-open repair window scrubs the
   data tiles from the digital shadow before recalibrating.

All serving/chaos imports live inside functions: ``repro.serving.worker``
imports this package for :func:`~repro.integrity.checker.attest_batch`,
so module-level imports here would be circular.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import IntegrityError
from repro.integrity.abft import IntegrityConfig


@dataclasses.dataclass(frozen=True)
class IntegrityWorkloadConfig:
    """Shape of one attestation workload run."""

    dims: tuple[int, ...] = (12, 16, 4)
    n_workers: int = 2
    seed: int = 7
    n_requests: int = 160
    #: Arrival rate as a multiple of the fleet's sustainable rate —
    #: kept under 1.0 so the run exercises attestation, not shedding.
    rate_multiplier: float = 0.6
    #: ``silent_corrupt`` injections compiled into the chaos scenario.
    silent_corruptions: int = 2
    corrupt_magnitude: float = 4.0
    #: Realized-level upsets per data tile in the escalation scenario.
    upset_cells: int = 48
    upset_delta: float = 0.6
    integrity: IntegrityConfig = IntegrityConfig()

    def __post_init__(self) -> None:
        if len(self.dims) < 2 or any(d < 1 for d in self.dims):
            raise IntegrityError(
                f"dims must be >= 2 positive widths, got {self.dims}"
            )
        if self.n_workers < 1:
            raise IntegrityError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.n_requests < 1:
            raise IntegrityError(f"n_requests must be >= 1, got {self.n_requests}")
        if self.rate_multiplier <= 0:
            raise IntegrityError("rate multiplier must be positive")
        if self.silent_corruptions < 0:
            raise IntegrityError("silent_corruptions must be >= 0")
        if self.upset_cells < 1:
            raise IntegrityError("upset_cells must be >= 1")
        if not 0.0 < self.upset_delta <= 2.0:
            raise IntegrityError("upset_delta must be in (0, 2]")


@dataclasses.dataclass
class IntegrityRunResult:
    """Everything one attestation workload run produced."""

    report: object
    server: object
    workers: list
    rollup: object
    session: object
    pre_accounting: dict
    #: Arrival span of the run (chaos windows are sized from this).
    window_s: float = 0.0

    def counters_total(self) -> dict:
        """Attestation counters summed across workers."""
        total: dict[str, int] = {}
        for worker in self.workers:
            checker = getattr(worker, "integrity", None)
            if checker is None:
                continue
            for key, value in checker.counters.as_dict().items():
                total[key] = total.get(key, 0) + value
        return total


def _server_config(seed: int):
    from repro.serving.server import ServerConfig

    return ServerConfig(
        max_queue_depth=64,
        max_batch=16,
        slo_latency_s=1e-5,
        max_retries=2,
        retry_backoff_s=5e-7,
        retry_jitter_s=1e-7,
        breaker_failure_threshold=3,
        # Short quarantine: the escalation scenario needs the half-open
        # probe (where the scrub runs) to land while traffic remains.
        breaker_cooldown_s=2e-6,
        seed=int(seed),
    )


def build_integrity_worker(
    worker_id: int,
    dims: tuple[int, ...],
    seed: int,
    *,
    with_integrity: bool = True,
    integrity_config: IntegrityConfig | None = None,
):
    """The PR 5 serving worker plus an attached ABFT checker.

    Reuses :func:`repro.serving.workload.build_worker` unchanged —
    checksum rows are allocated on spare PEs *after* ``deploy``
    finished programming the data tiles, so a checked and an unchecked
    worker consume identical write-noise draws for the data path (the
    parity smoke check depends on this).
    """
    from repro.serving.workload import build_worker

    worker = build_worker(worker_id, dims, seed)
    if with_integrity:
        from repro.integrity.checker import IntegrityChecker

        worker.integrity = IntegrityChecker(
            worker.acc, config=integrity_config, seed=seed
        )
    return worker


def synthesize_integrity_arrivals(
    config: IntegrityWorkloadConfig, rate_hz: float, rng: np.random.Generator
):
    """Single-phase best-effort Poisson arrivals (no deadlines: a batch
    held up by an escalation + peer retry must still settle, not shed)."""
    from repro.serving.request import InferenceRequest

    requests = []
    t = 0.0
    lam = rate_hz * config.rate_multiplier
    n_in = config.dims[0]
    for request_id in range(config.n_requests):
        t += float(rng.exponential(1.0 / lam))
        requests.append(
            InferenceRequest(
                request_id=request_id,
                x=rng.uniform(-1.0, 1.0, n_in),
                arrival_s=t,
                deadline_s=None,
                priority=0,
            )
        )
    return requests


def make_sdc_plan(config: IntegrityWorkloadConfig, window_s: float):
    """A crash-free chaos plan of only ``silent_corrupt`` injections.

    Everything else is zeroed so the sole way a corrupted batch can be
    caught is the checksum attestation — no crash or NaN gate to hide
    behind.  The window is the *arrival* span scaled down so every
    injection lands while its target worker still has batches to run.
    """
    from repro.chaos.plan import ChaosProfile, compile_plan

    profile = ChaosProfile(
        window_s=0.75 * window_s,
        workers=tuple(range(config.n_workers)),
        crashes=0,
        corruptions=0,
        stuck_bursts=0,
        drift_bursts=0,
        breaker_storms=0,
        silent_corruptions=config.silent_corruptions,
        corrupt_magnitude=config.corrupt_magnitude,
    )
    return compile_plan(profile, 20_000 + config.seed)


def _upset_worker(worker, config: IntegrityWorkloadConfig) -> int:
    """Silently drift realized levels on every data tile of one worker.

    Uses a derived generator so the accelerator's own stream (and hence
    replay) is untouched.  Returns cells perturbed.
    """
    rng = np.random.default_rng((0xABF7, config.seed))
    upset = 0
    acc = worker.acc
    for layer in acc.layers:
        for tile in layer.tiles:
            bank = acc.pes[tile[4]].bank
            upset += bank.upset_cells(
                config.upset_cells, rng, delta=config.upset_delta
            )
    return upset


def run_integrity_workload(
    config: IntegrityWorkloadConfig | None = None,
    *,
    with_integrity: bool = True,
    chaos_plan=None,
    upset_worker: int | None = None,
) -> IntegrityRunResult:
    """Build the checked fleet, serve the workload, return run artifacts.

    ``chaos_plan`` (see :func:`make_sdc_plan`) runs the serve under a
    chaos session; pass a *callable* to have it invoked with the
    computed arrival span (``plan = chaos_plan(window_s)``) — callers
    like the soak harness don't know the span before the run.
    ``upset_worker`` schedules a persistent realized-level drift on
    that worker a sixth of the way into the arrivals.
    A :class:`~repro.telemetry.rollup.ServingRollup` sized to cover the
    whole (virtual-time) run is always attached so the SDC-rate signal
    is observable afterwards.
    """
    from repro.chaos.audit import capture_accounting
    from repro.chaos.session import session as chaos_scope
    from repro.serving.server import TridentServer
    from repro.serving.workload import sustainable_rate_hz
    from repro.telemetry.rollup import ServingRollup

    config = config or IntegrityWorkloadConfig()
    workers = [
        build_integrity_worker(
            i,
            config.dims,
            config.seed + 101 * i,
            with_integrity=with_integrity,
            integrity_config=config.integrity,
        )
        for i in range(config.n_workers)
    ]
    server_config = _server_config(config.seed)
    rollup = ServingRollup(window_s=10.0)  # virtual runs last ~1e-4 s
    server = TridentServer(workers, config=server_config, rollup=rollup)
    rate = sustainable_rate_hz(workers, server_config.max_batch)
    rng = np.random.default_rng(config.seed)
    arrivals = synthesize_integrity_arrivals(config, rate, rng)
    window_s = arrivals[-1].arrival_s
    if callable(chaos_plan):
        chaos_plan = chaos_plan(window_s)

    if upset_worker is not None:
        target = int(upset_worker)

        def inject(srv) -> None:
            """Scheduled-action hook: drift the target worker's levels."""
            _upset_worker(srv.workers[target], config)

        # Early enough that escalations, the breaker trip, the cooldown,
        # and the scrubbing half-open probe all fit inside the arrivals.
        server.schedule_action(0.15 * window_s, "silent_upset", inject)

    pre = capture_accounting(workers)
    if chaos_plan is None:
        report = server.run(arrivals)
        session = None
    else:
        with chaos_scope(chaos_plan) as session:
            server.install_chaos(session)
            report = server.run(arrivals)
    return IntegrityRunResult(
        report=report,
        server=server,
        workers=workers,
        rollup=rollup,
        session=session,
        pre_accounting=pre,
        window_s=window_s,
    )


# ----------------------------------------------------------------------
# Smoke gate
# ----------------------------------------------------------------------
def _run_digest(report) -> tuple:
    """Hashable (decisions, output bytes) fingerprint of one run."""
    outputs = tuple(
        (c.request.request_id, np.asarray(c.output).tobytes())
        for c in report.completed
    )
    return (tuple(repr(d) for d in report.decisions), outputs)


def _audit(result: IntegrityRunResult, replay=None):
    from repro.chaos.audit import audit_serve_run

    return audit_serve_run(
        result.report,
        workers=result.workers,
        pre_accounting=result.pre_accounting,
        replay=replay,
        session=result.session,
    )


def smoke_checks(
    config: IntegrityWorkloadConfig | None = None,
) -> list[tuple[str, bool]]:
    """The ``repro integrity --smoke`` pass/fail list."""
    config = config or IntegrityWorkloadConfig()
    checks: list[tuple[str, bool]] = []

    # 1. Clean seed matrix: every batch attested, zero trips, audit holds.
    clean_runs = []
    for offset in range(3):
        cfg = dataclasses.replace(config, seed=config.seed + offset)
        clean_runs.append((cfg, run_integrity_workload(cfg)))
    attested_all = all(
        worker.integrity.counters.checks == worker.batches_executed > 0
        for _, run in clean_runs
        for worker in run.workers
    )
    checks.append(("every clean batch attested (3-seed matrix)", attested_all))
    checks.append(
        (
            "zero false trips across clean seed matrix",
            all(
                run.counters_total().get("tripped", 0) == 0
                for _, run in clean_runs
            ),
        )
    )
    checks.append(
        ("clean-run audits pass", all(_audit(run).ok for _, run in clean_runs))
    )

    # 2. Parity: checks enabled vs disabled is bit-identical.
    baseline = run_integrity_workload(config, with_integrity=False)
    checks.append(
        (
            "attestation never perturbs outputs (parity with unchecked run)",
            _run_digest(clean_runs[0][1].report)
            == _run_digest(baseline.report),
        )
    )

    # 3. Replay: two checks-enabled runs are bit-identical.
    replay = run_integrity_workload(config)
    checks.append(
        (
            "bit-identical replay with checks enabled",
            _run_digest(clean_runs[0][1].report) == _run_digest(replay.report),
        )
    )

    # 4. Injected SDC: every silent_corrupt trips and is attested.  The
    # arrival span is seed-deterministic, so the clean run's span sizes
    # the chaos window for both the run and its replay.
    span = clean_runs[0][1].window_s
    chaos_run = run_integrity_workload(
        config, chaos_plan=make_sdc_plan(config, span)
    )
    chaos_replay = run_integrity_workload(
        config, chaos_plan=make_sdc_plan(config, span)
    )
    applied = (
        chaos_run.session.applied_counts().get("silent_corrupt", 0)
        if chaos_run.session is not None
        else 0
    )
    chaos_counters = chaos_run.counters_total()
    checks.append(
        (
            "all injected silent corruptions landed",
            applied == config.silent_corruptions > 0,
        )
    )
    checks.append(
        (
            "injected SDC detected by checksum",
            chaos_counters.get("tripped", 0) >= applied,
        )
    )
    chaos_audit = _audit(chaos_run, replay=chaos_replay.report)
    checks.append(
        (
            "no corrupted batch settled unverified (audit)",
            chaos_audit.ok
            and any(name == "sdc_attested" for name, _, _ in chaos_audit.checks),
        )
    )

    # 5. Escalation: persistent drift -> IntegrityFault -> quarantine ->
    #    scrub -> restore.
    esc = run_integrity_workload(config, upset_worker=0)
    esc_counters = esc.counters_total()
    checks.append(
        (
            "persistent corruption escalated to peer retry",
            esc_counters.get("escalated", 0) > 0,
        )
    )
    transitions = [
        (t.get("worker"), t["to"], t["reason"])
        for t in esc.report.breaker_transitions
    ]
    checks.append(
        (
            "escalations tripped the worker breaker",
            any(w == 0 and to == "open" for w, to, _ in transitions),
        )
    )
    checks.append(
        (
            "quarantined worker scrubbed and restored",
            any(
                w == 0 and to == "closed" and reason == "probe_succeeded"
                for w, to, reason in transitions
            ),
        )
    )
    end = max(
        (record["t"] for record in esc.report.decisions), default=0.0
    )
    stats = esc.rollup.window_stats(end, 1e-5)
    checks.append(
        (
            "SDC rate surfaced in the serving rollup",
            stats.sdc_count > 0
            and stats.sdc_by_worker.get(0, 0) > 0
            and stats.sdc_rate() > 0.0,
        )
    )
    checks.append(("escalation-run audit passes", _audit(esc).ok))
    checks.append(
        (
            "escalation conserved + requests all settled",
            esc.report.conservation_ok()
            and all(
                worker.integrity.counters.conserved() for worker in esc.workers
            ),
        )
    )
    return checks


__all__ = [
    "IntegrityRunResult",
    "IntegrityWorkloadConfig",
    "build_integrity_worker",
    "make_sdc_plan",
    "run_integrity_workload",
    "smoke_checks",
    "synthesize_integrity_arrivals",
]
