"""Algorithm-based fault tolerance (ABFT) for the photonic MVM.

The classic Huang–Abraham construction, realized in the analog domain:
every mapped layer ``W`` (out x in) gets one extra *checksum row*
``c = 1^T W`` — the column sums — programmed onto its own PCM-MRR bank
tiles, column-aligned with the layer's own tile grid (the same
bank-column split ``repro.sharding`` uses for row shards).  Because the
MVM is linear, a clean forward pass satisfies

    sum_j (W x)_j  ==  c . x

for every sample, so summing a layer's detected outputs and streaming
the *same* encoded input through the checksum row yields two
independently computed analog numbers that must agree up to
quantization and device noise.  Any fault that perturbs one side but
not the other — a stuck cell, a drifted tile, a corrupted readout — is
caught by an O(in) comparison instead of a full O(out x in) shadow
multiply.

**Noise-calibrated tolerance.**  The two sides never agree exactly: the
layer and its checksum row quantize independently on the GST level
grid, program-verify leaves per-cell residue, and detection noise (when
enabled) perturbs both.  Each layer's threshold is therefore

    tau_k = quant_bound_k + margin * worst_calibration_residual_k

where ``quant_bound_k`` is the analytic worst case of per-cell level
error over one input column (``(out_k * scale_k + cs_scale_k) * step *
quant_margin_levels``) and the calibration term is measured on a seeded
pass over the *realized* banks — programming residue, stuck survivors,
and noise are all in the baseline.  Residuals are normalized by
``1 + ||x||_1`` so the bound is input-scale free; for noise-free
hardware the quantization bound alone already guarantees a clean run
can never trip (the property tests hold this across seeds).

A second, purely digital threshold ladder (``sum_j y_j`` vs the weight
shadow's ``c . x``) arbitrates escalations: if the analog checksum row
itself is the faulty element, the digital cross-check exonerates the
data path (see :mod:`repro.integrity.checker`).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.arch.control import RangeNormalizer
from repro.errors import IntegrityError


@dataclasses.dataclass(frozen=True)
class IntegrityConfig:
    """Knobs for checksum attachment and tolerance calibration."""

    #: Seeded calibration pass: batches x batch size of uniform inputs.
    calibration_batches: int = 4
    calibration_batch_size: int = 32
    #: Half-width of the uniform calibration input distribution.
    calibration_input_scale: float = 1.5
    #: Multiplier on the worst calibration residual (noise headroom).
    margin: float = 2.0
    #: Per-cell level error the analytic quantization bound allows for.
    #: 1.0 is provable for converged cells either way the bank was
    #: programmed: the program-verify acceptance tolerance is ±1 level
    #: *total* (rounding included), and nominal writes round to ≤ 0.5
    #: level.  Unconverged survivors and detection noise are what the
    #: measured ``margin`` term exists to absorb.
    quant_margin_levels: float = 1.0

    def __post_init__(self) -> None:
        if self.calibration_batches < 1 or self.calibration_batch_size < 1:
            raise IntegrityError(
                "calibration needs at least one batch of at least one sample"
            )
        if self.calibration_input_scale <= 0:
            raise IntegrityError("calibration input scale must be positive")
        if self.margin < 1.0:
            raise IntegrityError(
                f"margin must be >= 1 (it multiplies a worst case), "
                f"got {self.margin}"
            )
        if self.quant_margin_levels <= 0:
            raise IntegrityError("quantization margin must be positive")


@dataclasses.dataclass
class Violation:
    """One tripped layer check: where, how far out, against what."""

    layer: int
    residual: float
    threshold: float
    #: Sharded context (part accelerator within a pipeline stage).
    stage: int | None = None
    part: int | None = None

    def as_dict(self) -> dict:
        """JSON-safe record for incidents and events."""
        return {
            "layer": int(self.layer),
            "residual": float(self.residual),
            "threshold": float(self.threshold),
            "stage": self.stage,
            "part": self.part,
        }


class ChecksumUnit:
    """Checksum rows + calibrated thresholds for one accelerator.

    Owns the extra PEs carrying each layer's checksum row (allocated
    beyond the layer mapping, never entering ``layer.tiles`` so health
    signals and fault repair see only data tiles), the per-layer
    checksum vectors/scales, and the calibrated analog + digital
    thresholds.  All hardware work — checksum-tile writes, verification
    streams — is charged to the accelerator's event counters exactly
    like data-path work: integrity is not free and the energy model
    says so.
    """

    def __init__(
        self, acc, config: IntegrityConfig | None = None, seed: int = 0
    ) -> None:
        if not acc.layers:
            raise IntegrityError("map and program a network before attaching")
        if any(layer.weights is None for layer in acc.layers):
            raise IntegrityError("all layers need programmed weights")
        self.acc = acc
        self.config = config or IntegrityConfig()
        self.seed = int(seed)
        #: Per layer: list of (c0, c1, pe_index) checksum tiles.
        self.tiles: list[list[tuple[int, int, int]]] = []
        #: Per layer: checksum vector (true units) and its analog scale.
        self.vectors: list[np.ndarray] = []
        self.scales: list[float] = []
        self.thresholds: np.ndarray | None = None
        self.digital_thresholds: np.ndarray | None = None
        self._calibrations = 0
        self._attach()

    # ------------------------------------------------------------------
    # Attachment / programming
    # ------------------------------------------------------------------
    def _attach(self) -> None:
        acc = self.acc
        cols = acc.config.bank_cols
        needed = sum(-(-layer.in_dim // cols) for layer in acc.layers)
        if len(acc.pes) + needed > acc.config.n_pes:
            raise IntegrityError(
                f"checksum rows need {needed} extra PE tiles but only "
                f"{acc.config.n_pes - len(acc.pes)} of {acc.config.n_pes} "
                "PEs are unallocated; enlarge n_pes to attach integrity"
            )
        for layer in acc.layers:
            tiles: list[tuple[int, int, int]] = []
            for c0 in range(0, layer.in_dim, cols):
                pe_index = len(acc.pes)
                acc._new_pe()
                tiles.append((c0, min(c0 + cols, layer.in_dim), pe_index))
            self.tiles.append(tiles)
            self.vectors.append(np.zeros(layer.in_dim))
            self.scales.append(1.0)
        self.rewrite()

    def rewrite(self) -> None:
        """(Re)program every checksum tile from the weight shadows.

        Run at attach, and again whenever the data tiles are rewritten
        (repair sweeps) so the checksum rows track the same deployment.
        Each write is charged like any tile write — no free scrubs.
        """
        acc = self.acc
        for k, layer in enumerate(acc.layers):
            c = np.asarray(layer.weights, dtype=np.float64).sum(axis=0)
            peak = float(np.max(np.abs(c))) if c.size else 0.0
            scale = peak if peak > 1.0 else 1.0
            self.vectors[k] = c
            self.scales[k] = scale
            for c0, c1, pe_index in self.tiles[k]:
                block = (c[c0:c1] / scale).reshape(1, -1)
                pe = acc.pes[pe_index]
                if acc.verify_writer is not None:
                    pe.bank.program_verified(block, acc.verify_writer)
                else:
                    pe.program_weights(block)
                acc.counters.bank_writes += 1
                acc.counters.cells_written += block.size

    # ------------------------------------------------------------------
    # The two checksum computations
    # ------------------------------------------------------------------
    def analog_sums(self, layer_index: int, inputs: np.ndarray) -> np.ndarray:
        """Stream the layer's (B, in) inputs through its checksum row.

        Encodes the inputs exactly as the data path did (per-sample
        normalization) and accumulates the checksum tiles' detected
        outputs — the analog ``c . x`` per sample, in true units.  When
        ``inputs`` is the layer's recorded batch, the forward pass's
        cached E/O encoding is re-streamed directly (the hot verify
        path; saves an O(in x B) re-encode).  Charges one streamed
        symbol per tile per sample, the same per-bank rule as
        ``forward_batch``.
        """
        acc = self.acc
        layer = acc.layers[layer_index]
        batch = inputs.shape[0]
        if (
            inputs is layer.last_input_batch
            and layer.last_enc_batch is not None
        ):
            enc, scales = layer.last_enc_batch, layer.last_enc_scales
        else:
            enc, scales = RangeNormalizer.normalize_columns(inputs.T)
        total = np.zeros(batch, dtype=np.float64)
        for c0, c1, pe_index in self.tiles[layer_index]:
            part = acc.pes[pe_index].forward_batch(
                # The encoder bounded the slab; skip the range re-check.
                enc[c0:c1], capture_derivative=False, validate=False,
            )
            total += part[0]
            acc.counters.symbols += batch
        return total * scales * self.scales[layer_index]

    def digital_sums(self, layer_index: int, inputs: np.ndarray) -> np.ndarray:
        """The control unit's exact ``c . x`` from the weight shadow."""
        return inputs @ self.vectors[layer_index]

    # ------------------------------------------------------------------
    # Residuals / verification
    # ------------------------------------------------------------------
    def _layer_io(self, outputs: np.ndarray | None):
        """Yield ``(k, inputs, observed_sums)`` per layer.

        Hidden layers (and any layer that fires an activation) check
        their recorded pre-activation logits; the final activation-free
        layer checks ``outputs`` — the array actually handed to the
        caller — so corruption applied after the physics (the silent-SDC
        model) is still in scope.  Requires ``forward_batch(record=True)``.
        """
        last = len(self.acc.layers) - 1
        for k, layer in enumerate(self.acc.layers):
            inputs = layer.last_input_batch
            if inputs is None:
                raise IntegrityError(
                    f"layer {k} has no recorded batch; run "
                    "forward_batch(..., record=True) before verifying"
                )
            if k == last and not layer.apply_activation and outputs is not None:
                observed = np.asarray(outputs, dtype=np.float64)
            else:
                observed = layer.last_logits_batch
            yield k, inputs, observed.sum(axis=1)

    def _input_l1(self, layer_index: int, inputs: np.ndarray) -> np.ndarray:
        """Per-sample ``||x||_1`` for a layer's (B, in) input batch.

        When ``inputs`` is the layer's recorded batch the norm was already
        computed as a byproduct of the E/O peak scan
        (:meth:`~repro.arch.control.RangeNormalizer.normalize_columns`
        with ``return_l1``) — the recorded batch itself is a transpose
        view, and taking ``|inputs|`` would materialize it
        column-by-column on the hot verify path.
        """
        layer = self.acc.layers[layer_index]
        if inputs is layer.last_input_batch and layer.last_l1_batch is not None:
            return layer.last_l1_batch
        return np.abs(inputs).sum(axis=1)

    @staticmethod
    def _normalized_residual(
        sums: np.ndarray, reference: np.ndarray, input_l1: np.ndarray
    ) -> float:
        norm = 1.0 + input_l1
        return float(np.max(np.abs(sums - reference) / norm))

    def analog_residuals(self, outputs: np.ndarray | None = None) -> np.ndarray:
        """Worst normalized |sum(y) - analog c.x| per layer."""
        return np.array(
            [
                self._normalized_residual(
                    sums, self.analog_sums(k, inputs), self._input_l1(k, inputs)
                )
                for k, inputs, sums in self._layer_io(outputs)
            ]
        )

    def digital_residuals(self, outputs: np.ndarray | None = None) -> np.ndarray:
        """Worst normalized |sum(y) - digital c.x| per layer."""
        return np.array(
            [
                self._normalized_residual(
                    sums, self.digital_sums(k, inputs), self._input_l1(k, inputs)
                )
                for k, inputs, sums in self._layer_io(outputs)
            ]
        )

    def violations(
        self,
        outputs: np.ndarray | None = None,
        *,
        stage: int | None = None,
        part: int | None = None,
    ) -> list[Violation]:
        """Layers whose analog checksum residual exceeds its threshold."""
        if self.thresholds is None:
            raise IntegrityError("calibrate thresholds before verifying")
        residuals = self.analog_residuals(outputs)
        return [
            Violation(k, float(r), float(t), stage=stage, part=part)
            for k, (r, t) in enumerate(zip(residuals, self.thresholds))
            if r > t
        ]

    def digital_ok(self, outputs: np.ndarray | None = None) -> bool:
        """True when every layer passes the digital-shadow cross-check."""
        if self.digital_thresholds is None:
            raise IntegrityError("calibrate thresholds before verifying")
        residuals = self.digital_residuals(outputs)
        return bool(np.all(residuals <= self.digital_thresholds))

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def _weight_step(self) -> float:
        levels = int(self.acc.config.tuning.levels)
        return 2.0 / (levels - 1)

    def calibrate(self) -> np.ndarray:
        """Seeded pass over the realized banks -> per-layer thresholds.

        Draws uniform input batches from a generator derived from
        ``(seed, calibration_round)`` (re-calibrating after a repair
        sweep measures the repaired state, deterministically), records
        forward passes, and sets each layer's threshold to the analytic
        quantization bound plus ``margin`` times the worst observed
        residual.  The calibration forwards run the real physics and are
        charged like any other traffic.  Returns the analog thresholds.
        """
        cfg = self.config
        acc = self.acc
        rng = np.random.default_rng(
            (0x5DC, self.seed, self._calibrations)
        )
        self._calibrations += 1
        n_layers = len(acc.layers)
        worst_analog = np.zeros(n_layers)
        worst_digital = np.zeros(n_layers)
        in_dim = acc.layers[0].in_dim
        for _ in range(cfg.calibration_batches):
            xs = rng.uniform(
                -cfg.calibration_input_scale,
                cfg.calibration_input_scale,
                (cfg.calibration_batch_size, in_dim),
            )
            acc.forward_batch(xs, record=True)
            worst_analog = np.maximum(worst_analog, self.analog_residuals())
            worst_digital = np.maximum(
                worst_digital, self.digital_residuals()
            )
        step = self._weight_step()
        lev = cfg.quant_margin_levels
        quant_analog = np.array(
            [
                (layer.out_dim * layer.weight_scale + self.scales[k])
                * step
                * lev
                for k, layer in enumerate(acc.layers)
            ]
        )
        quant_digital = np.array(
            [
                layer.out_dim * layer.weight_scale * step * lev
                for layer in acc.layers
            ]
        )
        self.thresholds = quant_analog + cfg.margin * worst_analog
        self.digital_thresholds = quant_digital + cfg.margin * worst_digital
        return self.thresholds
