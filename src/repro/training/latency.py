"""Analytical training-time model — regenerates Table V.

One backprop step on Trident is three GEMM passes plus a weight update, all
expressible on the same weight-stationary hardware (paper Table II):

- **forward**      (M x K) @ (K x N*B)   — inference at training batch B
- **gradient**     (K x M) @ (M x N*B)   — banks hold W^T (Eq. 3)
- **weight grad**  (M x N*B) @ (N*B x K) — the outer-product mode (Eq. 2);
  the reduction now runs over batch x positions, so banks are reprogrammed
  every 16 reduction elements — this pass is where Trident's retuning
  overhead lives, and why models with many small layers (GoogleNet) train
  relatively worse than Xavier while large-tile models (VGG-16) train much
  better: exactly Table V's sign pattern.
- **update**       every weight cell rewritten once per batch (Eq. 1).

The NVIDIA AGX Xavier comparison uses the paper's own method: "We use the
throughput during inference of these models to estimate throughput during
training" — a fixed forward : training op expansion over the roofline
inference time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.cache import CacheModel
from repro.dataflow.cost_model import PhotonicArch, PhotonicCostModel
from repro.dataflow.tiling import TileSchedule
from repro.errors import ConfigError, ScheduleError
from repro.nn.graph import INPUT, Network
from repro.nn.layers import GEMMShape


@dataclass(frozen=True)
class TrainingPassCosts:
    """Per-sample time [s] and energy [J] of each training pass."""

    model: str
    accelerator: str
    forward_time_s: float
    gradient_time_s: float
    outer_time_s: float
    update_time_s: float
    forward_energy_j: float
    gradient_energy_j: float
    outer_energy_j: float
    update_energy_j: float

    @property
    def time_s(self) -> float:
        """Per-sample training step time [s]."""
        return (
            self.forward_time_s
            + self.gradient_time_s
            + self.outer_time_s
            + self.update_time_s
        )

    @property
    def energy_j(self) -> float:
        """Per-sample training step energy [J]."""
        return (
            self.forward_energy_j
            + self.gradient_energy_j
            + self.outer_energy_j
            + self.update_energy_j
        )

    @property
    def expansion_over_inference(self) -> float:
        """Training-step : forward-pass time ratio."""
        if self.forward_time_s <= 0:
            raise ScheduleError("non-positive forward time")
        return self.time_s / self.forward_time_s


class TrainingCostModel:
    """Trident training-latency/energy analysis."""

    def __init__(
        self,
        arch: PhotonicArch | None = None,
        cache: CacheModel | None = None,
        batch: int = 32,
    ) -> None:
        if batch < 1:
            raise ConfigError(f"batch must be positive, got {batch}")
        self.arch = arch or PhotonicArch.trident()
        self.cache = cache or CacheModel()
        self.batch = batch
        # Forward/gradient passes amortize tuning over the batch; the
        # outer-product pass has the batch folded into its reduction, so it
        # is costed at batch 1 and divided by B.
        self._cm_batched = PhotonicCostModel(self.arch, cache=self.cache, batch=batch)
        self._cm_single = PhotonicCostModel(self.arch, cache=self.cache, batch=1)

    # ------------------------------------------------------------------
    def step_costs(self, network: Network) -> TrainingPassCosts:
        """Per-sample cost of one SGD step over the network."""
        stats = network.stats()
        B = self.batch
        fwd_t = fwd_e = grad_t = grad_e = outer_t = outer_e = upd_t = upd_e = 0.0
        rows, cols = self.arch.bank_rows, self.arch.bank_cols
        any_compute = False
        for record in stats.layers:
            gemm = record.gemm
            if gemm is None:
                continue
            any_compute = True
            src = network.inputs_of(record.name)[0]
            in_shape = network.input_shape if src == INPUT else network.shape_of(src)

            fwd_sched = TileSchedule(gemm, rows, cols)
            fwd = self._cm_batched.layer_cost(record.name, fwd_sched, in_shape, record.fused_activation)
            fwd_t += fwd.time_s
            fwd_e += fwd.energy_j

            grad_sched = TileSchedule(
                GEMMShape(m=gemm.k, k=gemm.m, n=gemm.n, groups=gemm.groups), rows, cols
            )
            grad = self._cm_batched.layer_cost(
                f"{record.name}.grad", grad_sched, record.output, False
            )
            grad_t += grad.time_s
            grad_e += grad.energy_j

            # The weight-gradient GEMM contracts over batch x positions;
            # the bank can hold either operand (delta chunks or activation
            # chunks), giving two tile orientations with different
            # write/stream balances.  The control unit picks the faster —
            # e.g. 1x1 convs with few input channels prefer streaming the
            # wide output dimension.
            outer = min(
                (
                    self._cm_single.layer_cost(
                        f"{record.name}.outer", sched_o, record.output, False
                    )
                    for sched_o in (
                        TileSchedule(
                            GEMMShape(m=gemm.m, k=gemm.n * B, n=gemm.k,
                                      groups=gemm.groups),
                            rows, cols,
                        ),
                        TileSchedule(
                            GEMMShape(m=gemm.k, k=gemm.n * B, n=gemm.m,
                                      groups=gemm.groups),
                            rows, cols,
                        ),
                    )
                ),
                key=lambda c: c.time_s,
            )
            outer_t += outer.time_s / B
            outer_e += outer.energy_j / B

            # Update: rewrite every weight cell once per batch.
            upd_t += fwd_sched.rounds(self.arch.n_pes) * self.arch.write_time_s / B
            upd_e += fwd_sched.cells * self.arch.write_energy_per_cell_j / B
        if not any_compute:
            raise ScheduleError(f"{network.name}: no compute layers to train")
        return TrainingPassCosts(
            model=network.name,
            accelerator=self.arch.name,
            forward_time_s=fwd_t,
            gradient_time_s=grad_t,
            outer_time_s=outer_t,
            update_time_s=upd_t,
            forward_energy_j=fwd_e,
            gradient_energy_j=grad_e,
            outer_energy_j=outer_e,
            update_energy_j=upd_e,
        )

    def training_time_s(self, network: Network, n_samples: int = 50_000) -> float:
        """Wall-clock to train ``n_samples`` images (Table V's metric)."""
        if n_samples < 1:
            raise ConfigError(f"n_samples must be positive, got {n_samples}")
        return self.step_costs(network).time_s * n_samples

    def training_energy_j(self, network: Network, n_samples: int = 50_000) -> float:
        """Energy to train ``n_samples`` images [J]."""
        if n_samples < 1:
            raise ConfigError(f"n_samples must be positive, got {n_samples}")
        return self.step_costs(network).energy_j * n_samples
