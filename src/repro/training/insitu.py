"""Functional in-situ backpropagation on the Trident accelerator.

Implements the paper's training flow (Sec. III-A-2, Table II) against the
*functional* photonic model — real numbers through quantized, noisy banks:

1. **Forward** (per sample): each layer's PE computes y = f(W x); its LDSU
   latches the one-bit derivative f'(h).
2. **Gradient vector**: the control unit reprograms PE k's bank with
   W_{k+1}^T; the error delta_{k+1} streams through; the LDSU-programmed
   TIA gains apply the Hadamard with f'(h_k) — Eq. (3).
3. **Outer product**: delta_k and y_{k-1} stream through a bank programmed
   column-constant with y_{k-1}, yielding dW_k — Eq. (2).
4. **Update**: the control unit applies W -= lr * dW and reprograms the
   GST levels — Eq. (1).  Weights therefore live *on the hardware grid*:
   every update is re-quantized to 255 levels, exactly the constraint the
   paper's 8-bit-training argument is about.

Two execution schedules compute the same step:

- :meth:`InSituTrainer.train_step` — **batched**: the whole minibatch
  streams through each layer's bank as one blocked ``matmat``, the LDSU
  latches the batch's bit plane, the W^T reprogram of the gradient-vector
  pass is *grouped* (once per layer instead of once per sample), and the
  per-sample outer products collapse to one vectorized pass with
  per-sample write accounting.  A minibatch costs O(layers) Python
  iterations.
- :meth:`InSituTrainer.train_step_streaming` — **per-sample**: the
  original one-sample-at-a-time schedule, including the inter-sample
  forward-weight restores the per-sample backward passes force.

For noise-free hardware both schedules produce identical losses and
updated weights; their event counts legitimately differ (grouped
reprogramming is the saving), which the write-cost-law tests pin down.

Because the trained weights are the physically realized (quantized + noisy)
ones, there is no train/deploy mismatch — the property the paper contrasts
with offline-trained photonic accelerators (Sec. I).
"""

from __future__ import annotations

import numpy as np

from repro.arch.accelerator import TridentAccelerator
from repro.arch.control import OperatingMode, RangeNormalizer
from repro.errors import MappingError, ShapeError
from repro.nn.reference import cross_entropy_loss
from repro.telemetry.metrics import NULL_INSTRUMENT
from repro.telemetry.session import (
    counter as _metric_counter,
    gauge as _metric_gauge,
    histogram as _metric_histogram,
    trace_span as _trace_span,
)

_GRAD_EPS = 1e-12


class InSituTrainer:
    """SGD trainer whose every linear-algebra step runs on the photonic PEs."""

    def __init__(self, accelerator: TridentAccelerator, lr: float = 0.05) -> None:
        if lr <= 0:
            raise MappingError(f"learning rate must be positive, got {lr}")
        for layer in accelerator.layers:
            if len(layer.tiles) != 1:
                raise MappingError(
                    "in-situ training requires each layer to fit one PE "
                    f"(layer {layer.index} uses {len(layer.tiles)} tiles); "
                    "use a larger bank or a smaller network"
                )
        if not accelerator.layers:
            raise MappingError("map and program a network before training")
        self.acc = accelerator
        self.lr = lr

    # ------------------------------------------------------------------
    def _pe_for(self, layer_index: int):
        return self.acc.pes[self.acc.layers[layer_index].tiles[0][4]]

    def _gradient_vector(self, layer_index: int, delta_next: np.ndarray) -> np.ndarray:
        """delta_k for layer ``layer_index`` given delta_{k+1} (Eq. 3).

        Runs on PE k: bank <- W_{k+1}^T, inputs <- delta_{k+1}, TIA gains <-
        the LDSU bits PE k captured during the forward pass.
        """
        layers = self.acc.layers
        w_next = layers[layer_index + 1].weights
        pe = self._pe_for(layer_index)

        w_norm = RangeNormalizer.normalize(w_next.T.ravel())
        pe.program_weights(w_next.T / w_norm.scale)
        self.acc.counters.bank_writes += 1
        self.acc.counters.cells_written += w_next.size
        if self.acc.control.set_mode(OperatingMode.GRADIENT_VECTOR):
            self.acc.counters.mode_switches += 1

        d_norm = RangeNormalizer.normalize(delta_next)
        out = pe.gradient_vector(d_norm.values)
        self.acc.counters.symbols += 1
        return out * w_norm.scale * d_norm.scale

    def _outer_product(self, layer_index: int, delta: np.ndarray, y_prev: np.ndarray) -> np.ndarray:
        """dW_k = delta_k (x) y_{k-1} on PE k's bank (Eq. 2)."""
        pe = self._pe_for(layer_index)
        if self.acc.control.set_mode(OperatingMode.OUTER_PRODUCT):
            self.acc.counters.mode_switches += 1
        d_norm = RangeNormalizer.normalize(delta)
        y_norm = RangeNormalizer.normalize(y_prev)
        grad = pe.outer_product(d_norm.values, y_norm.values)
        self.acc.counters.bank_writes += 1
        self.acc.counters.cells_written += y_prev.size * delta.size
        self.acc.counters.symbols += delta.size
        return grad * d_norm.scale * y_norm.scale

    # ------------------------------------------------------------------
    def backward_sample(self, grad_logits: np.ndarray) -> list[np.ndarray]:
        """Run the photonic backward pass for the last forwarded sample.

        ``grad_logits`` is dL/dh for the final layer.  Returns per-layer
        weight gradients.  Must follow a ``forward(..., record=True)``.
        """
        layers = self.acc.layers
        if layers[-1].last_input is None:
            raise MappingError("run a recorded forward pass before backward")
        grads: list[np.ndarray] = [np.zeros(0)] * len(layers)
        delta = np.asarray(grad_logits, dtype=np.float64)
        if delta.shape != (layers[-1].out_dim,):
            raise ShapeError(
                f"grad_logits shape {delta.shape} != ({layers[-1].out_dim},)"
            )
        for k in reversed(range(len(layers))):
            grads[k] = self._outer_product(k, delta, layers[k].last_input)
            if k > 0:
                delta = self._gradient_vector(k - 1, delta)
                if np.max(np.abs(delta)) < _GRAD_EPS:
                    # Dead path: remaining upstream gradients are zero.
                    for j in range(k):
                        layer = layers[j]
                        grads[j] = np.zeros((layer.out_dim, layer.in_dim))
                    break
        return grads

    # ------------------------------------------------------------------
    # Batched backward pass
    # ------------------------------------------------------------------
    def _gradient_vector_batch(self, layer_index: int, delta_next: np.ndarray) -> np.ndarray:
        """Batched Eq. (3): (B, out_{k+1}) deltas -> (B, out_k) deltas.

        Grouped reprogramming: PE k's bank receives W_{k+1}^T *once* for
        the whole batch, then every sample's delta streams through it; the
        per-sample Hadamard comes from the LDSU bit plane the batched
        forward pass latched.
        """
        layers = self.acc.layers
        w_next = layers[layer_index + 1].weights
        pe = self._pe_for(layer_index)

        w_norm = RangeNormalizer.normalize(w_next.T.ravel())
        pe.program_weights(w_next.T / w_norm.scale)
        self.acc.counters.bank_writes += 1
        self.acc.counters.cells_written += w_next.size
        if self.acc.control.set_mode(OperatingMode.GRADIENT_VECTOR):
            self.acc.counters.mode_switches += 1

        d_norm, d_scales = RangeNormalizer.normalize_columns(delta_next.T)
        out = pe.gradient_vector_batch(d_norm)  # (out_k, B)
        self.acc.counters.symbols += delta_next.shape[0]
        return (out * w_norm.scale * d_scales).T

    def _outer_product_batch(
        self, layer_index: int, delta: np.ndarray, y_prev: np.ndarray
    ) -> np.ndarray:
        """Batch-summed Eq. (2): sum_b delta_b (x) y_prev_b on PE k's bank.

        The hardware still pays one bank program + len(delta) symbols per
        sample (the PE charges them); only the Python-side loop collapses.
        """
        pe = self._pe_for(layer_index)
        if self.acc.control.set_mode(OperatingMode.OUTER_PRODUCT):
            self.acc.counters.mode_switches += 1
        d_norm, d_scales = RangeNormalizer.normalize_columns(delta.T)
        y_norm, y_scales = RangeNormalizer.normalize_columns(y_prev.T)
        grads = pe.outer_product_batch(d_norm.T, y_norm.T)  # (B, d, y)
        batch, d = delta.shape
        self.acc.counters.bank_writes += batch
        self.acc.counters.cells_written += batch * d * y_prev.shape[1]
        self.acc.counters.symbols += batch * d
        return np.einsum("bij,b->ij", grads, d_scales * y_scales)

    def backward_batch(self, grad_logits: np.ndarray) -> list[np.ndarray]:
        """Batched photonic backward pass for the last recorded batch.

        ``grad_logits`` is (B, n_out) of *per-sample* dL/dh for the final
        layer.  Returns per-layer weight gradients summed over the batch —
        the same totals as accumulating :meth:`backward_sample` over the
        batch on noise-free hardware.  Must follow a
        ``forward_batch(..., record=True)``.
        """
        layers = self.acc.layers
        if layers[-1].last_input_batch is None:
            raise MappingError(
                "run a recorded forward_batch before backward_batch"
            )
        delta = np.atleast_2d(np.asarray(grad_logits, dtype=np.float64))
        batch = layers[-1].last_input_batch.shape[0]
        if delta.shape != (batch, layers[-1].out_dim):
            raise ShapeError(
                f"grad_logits shape {delta.shape} != ({batch}, {layers[-1].out_dim})"
            )
        grads: list[np.ndarray] = [np.zeros(0)] * len(layers)
        alive = np.arange(batch)
        for k in reversed(range(len(layers))):
            grads[k] = self._outer_product_batch(
                k, delta, layers[k].last_input_batch[alive]
            )
            if k > 0:
                delta = self._gradient_vector_batch(k - 1, delta)
                # Dead-path compaction: a sample whose delta has died
                # contributes nothing upstream, and the control unit (which
                # holds the deltas digitally) does not stream its zero
                # column — so the batched schedule charges exactly the
                # symbols/writes the per-sample schedule would.
                live = np.max(np.abs(delta), axis=1) >= _GRAD_EPS
                if not live.all():
                    alive = alive[live]
                    delta = delta[live]
                    if alive.size == 0:
                        for j in range(k):
                            layer = layers[j]
                            grads[j] = np.zeros((layer.out_dim, layer.in_dim))
                        break
        return grads

    # ------------------------------------------------------------------
    def train_step(self, x_batch: np.ndarray, labels: np.ndarray) -> float:
        """One SGD step on a minibatch (softmax cross-entropy), batched.

        The minibatch streams through every bank as blocked ``matmat``
        calls, the backward pass groups each layer's W^T reprogram, and
        the outer products run as one vectorized pass with per-sample
        write accounting — O(layers) Python iterations per batch.  For
        noise-free hardware the loss and updated weights are identical to
        :meth:`train_step_streaming`.
        """
        x_batch = np.atleast_2d(np.asarray(x_batch, dtype=np.float64))
        labels = np.atleast_1d(np.asarray(labels))
        if x_batch.shape[0] != labels.shape[0]:
            raise ShapeError("batch and labels must have matching lengths")
        layers = self.acc.layers
        batch = x_batch.shape[0]
        # Live power streaming: the step's write + streaming window lands
        # as one timed sample on the shared power gauge (see
        # forward_batch); skipped when telemetry is off.
        power_gauge = _metric_gauge(
            "repro_power_draw_w", "Chip power draw over hardware time [W]"
        )
        if power_gauge is not NULL_INSTRUMENT:
            energy_before = self.acc.energy_estimate_j()
            time_before = self.acc.time_estimate_s()
        with _trace_span("train_step", accelerator=self.acc, batch=batch):
            logits = self.acc.forward_batch(x_batch, record=True)
            loss, grad = cross_entropy_loss(logits, labels)
            # cross_entropy_loss returns the mean-loss gradient (divided by
            # B); the backward pass streams per-sample deltas, so undo the
            # division here and reapply it at the update — mirroring the
            # per-sample path.
            with _trace_span("backward_batch", accelerator=self.acc, batch=batch):
                grads = self.backward_batch(grad * batch)
            new_weights = [
                layer.weights - self.lr * g / batch for layer, g in zip(layers, grads)
            ]
            # One reprogram per layer per batch: weights re-enter the grid.
            with _trace_span("weight_update", accelerator=self.acc, batch=batch):
                self.acc.set_weights(new_weights)
            if self.acc.control.set_mode(OperatingMode.INFERENCE):
                self.acc.counters.mode_switches += 1
        _metric_counter("repro_train_steps_total").inc()
        _metric_histogram("repro_train_loss").observe(loss)
        if power_gauge is not NULL_INSTRUMENT:
            time_after = self.acc.time_estimate_s()
            if time_after > time_before:
                mean_power_w = (
                    self.acc.energy_estimate_j() - energy_before
                ) / (time_after - time_before)
                power_gauge.set_at(mean_power_w, time_after)
        return loss

    def train_step_streaming(self, x_batch: np.ndarray, labels: np.ndarray) -> float:
        """One SGD step with the per-sample streaming schedule.

        Forward and backward run one sample at a time; between samples the
        control unit restores the forward weights the backward pass
        clobbered (a real retuning cost — counted).  Gradients accumulate
        digitally and one update + reprogram happens per batch.  Kept as
        the hardware-faithful reference schedule the batched
        :meth:`train_step` is verified against.
        """
        x_batch = np.atleast_2d(np.asarray(x_batch, dtype=np.float64))
        labels = np.atleast_1d(np.asarray(labels))
        if x_batch.shape[0] != labels.shape[0]:
            raise ShapeError("batch and labels must have matching lengths")
        layers = self.acc.layers
        accum = [np.zeros((l.out_dim, l.in_dim)) for l in layers]
        total_loss = 0.0
        batch = x_batch.shape[0]
        with _trace_span(
            "train_step_streaming", accelerator=self.acc, batch=batch
        ):
            for i, (x, label) in enumerate(zip(x_batch, labels)):
                if i > 0:
                    # The previous sample's backward pass left W^T / outer-
                    # product operands in the banks; the control unit
                    # restores the forward weights (a real retuning cost —
                    # counted).
                    self.acc.set_weights([layer.weights for layer in layers])
                logits = self.acc.forward(x, record=True)
                loss, grad = cross_entropy_loss(logits[None, :], np.array([label]))
                total_loss += loss
                grads = self.backward_sample(grad[0])
                for a, g in zip(accum, grads):
                    a += g
            new_weights = [
                layer.weights - self.lr * a / batch for layer, a in zip(layers, accum)
            ]
            # One reprogram per layer per batch: weights re-enter the grid.
            self.acc.set_weights(new_weights)
            if self.acc.control.set_mode(OperatingMode.INFERENCE):
                self.acc.counters.mode_switches += 1
        _metric_counter("repro_train_steps_total").inc()
        _metric_histogram("repro_train_loss").observe(total_loss / batch)
        return total_loss / batch

    # ------------------------------------------------------------------
    def predict(self, x_batch: np.ndarray) -> np.ndarray:
        """Argmax classes from hardware forward passes."""
        logits = self.acc.forward_batch(np.atleast_2d(x_batch))
        return np.argmax(logits, axis=-1)

    def accuracy(self, x_batch: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy measured on the hardware."""
        return float(np.mean(self.predict(x_batch) == np.asarray(labels)))

    @property
    def weights(self) -> list[np.ndarray]:
        """The control unit's digital shadow of the programmed weights."""
        return [layer.weights.copy() for layer in self.acc.layers]
