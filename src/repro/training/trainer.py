"""Epoch-level training loop and the offline-vs-in-situ experiment.

Works with any classifier exposing ``train_step(x, labels) -> loss`` and
``accuracy(x, labels) -> float`` — i.e. both :class:`~repro.nn.reference.
DigitalMLP` (the paper's "train a digital model first" strawman) and
:class:`~repro.training.insitu.InSituTrainer` (Trident).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.errors import ConfigError
from repro.nn.datasets import Dataset


class Classifier(Protocol):
    """Minimal trainable-classifier interface."""

    def train_step(self, x_batch: np.ndarray, labels: np.ndarray) -> float:
        """One optimization step; returns the batch loss."""
        ...

    def accuracy(self, x_batch: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a batch."""
        ...


@dataclass
class TrainingHistory:
    """Per-epoch metrics from :func:`train_classifier`."""

    losses: list[float] = field(default_factory=list)
    train_accuracies: list[float] = field(default_factory=list)
    test_accuracies: list[float] = field(default_factory=list)
    epoch_times_s: list[float] = field(default_factory=list)

    @property
    def final_test_accuracy(self) -> float:
        """Test accuracy after the last epoch."""
        if not self.test_accuracies:
            raise ConfigError("no epochs recorded")
        return self.test_accuracies[-1]

    @property
    def epochs(self) -> int:
        """Number of recorded epochs."""
        return len(self.losses)

    @property
    def total_time_s(self) -> float:
        """Wall-clock time summed over the recorded epochs."""
        return float(sum(self.epoch_times_s))


def train_classifier(
    model: Classifier,
    train: Dataset,
    test: Dataset,
    epochs: int = 10,
    batch_size: int = 16,
    seed: int = 0,
) -> TrainingHistory:
    """Train for ``epochs`` passes; record loss and accuracies per epoch."""
    if epochs < 1:
        raise ConfigError(f"epochs must be positive, got {epochs}")
    history = TrainingHistory()
    for epoch in range(epochs):
        t0 = time.perf_counter()
        epoch_losses = []
        for xb, yb in train.batches(batch_size, seed=seed + epoch):
            epoch_losses.append(model.train_step(xb, yb))
        history.epoch_times_s.append(time.perf_counter() - t0)
        history.losses.append(float(np.mean(epoch_losses)))
        history.train_accuracies.append(model.accuracy(train.x, train.y))
        history.test_accuracies.append(model.accuracy(test.x, test.y))
    return history
