"""Direct Feedback Alignment (DFA) on the photonic hardware.

The paper's Related Work discusses Filipovich et al. [9], who train
photonic networks with DFA instead of backpropagation, and argues Trident's
true-gradient training is preferable ("DFA is not effective for training
convolutional layers" [35]).  This module implements DFA on the same
functional hardware so the comparison is quantitative:

- **DFA**: the error at the *output* layer is projected to every hidden
  layer through a fixed random feedback matrix B_k:
  ``delta_k = (B_k e) ⊙ f'(h_k)`` — no transposed weights anywhere.
- **Hardware consequence**: B_k never changes, so it can live permanently
  in *dedicated* feedback PEs.  Unlike backprop, the backward pass then
  costs **zero weight-bank retuning** — DFA's genuine attraction for
  photonics, which this model captures (and prices: extra PEs).

Both the photonic :class:`DFATrainer` and a :class:`DigitalDFA` reference
are provided; the ablation bench races them against true backprop.
"""

from __future__ import annotations

import numpy as np

from repro.arch.accelerator import TridentAccelerator
from repro.arch.control import RangeNormalizer
from repro.arch.pe import ProcessingElement
from repro.arch.weight_bank import WeightBank
from repro.devices.photodetector import BalancedPhotodetector
from repro.errors import MappingError, ShapeError
from repro.nn.reference import ACTIVATIONS, DigitalMLP, cross_entropy_loss


class DigitalDFA:
    """Reference DFA trainer for a bias-free MLP (same API as DigitalMLP)."""

    def __init__(self, dims: list[int], activation: str = "gst", seed: int = 0) -> None:
        self.mlp = DigitalMLP(dims, activation=activation, seed=seed)
        rng = np.random.default_rng(seed + 1)
        n_out = dims[-1]
        self.feedback = [
            rng.normal(0.0, 1.0 / np.sqrt(n_out), size=(n, n_out))
            for n in dims[1:-1]
        ]
        self._act_grad = ACTIVATIONS[activation][1]

    @property
    def weights(self) -> list[np.ndarray]:
        """The trained weight matrices."""
        return self.mlp.weights

    def train_step(self, x: np.ndarray, labels: np.ndarray, lr: float = 0.05) -> float:
        """One DFA step; returns the batch loss."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        _, inputs, logits = self.mlp.forward(x, return_intermediates=True)
        loss, error = cross_entropy_loss(logits[-1], labels)
        n_layers = self.mlp.n_layers
        for k in range(n_layers):
            if k == n_layers - 1:
                delta = error
            else:
                delta = (error @ self.feedback[k].T) * self._act_grad(logits[k])
            self.mlp.weights[k] -= lr * delta.T @ inputs[k]
        return loss

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a batch."""
        return self.mlp.accuracy(x, labels)


class DFATrainer:
    """DFA on the functional Trident accelerator.

    With ``dedicated_feedback`` (default), one extra PE per hidden layer
    holds its feedback matrix permanently — the backward projection costs
    symbols but *no* bank writes.  Without it, feedback matrices are
    programmed into the layer PEs per sample (costed like backprop).
    """

    def __init__(
        self,
        accelerator: TridentAccelerator,
        lr: float = 0.05,
        seed: int = 0,
        dedicated_feedback: bool = True,
    ) -> None:
        if lr <= 0:
            raise MappingError(f"learning rate must be positive, got {lr}")
        if not accelerator.layers:
            raise MappingError("map and program a network before training")
        for layer in accelerator.layers:
            if len(layer.tiles) != 1:
                raise MappingError(
                    "DFA training requires each layer to fit one PE"
                )
        self.acc = accelerator
        self.lr = lr
        self.dedicated_feedback = dedicated_feedback

        rng = np.random.default_rng(seed + 1)
        n_out = accelerator.layers[-1].out_dim
        cfg = accelerator.config
        if n_out > cfg.bank_cols:
            raise MappingError(
                f"output width {n_out} exceeds bank columns {cfg.bank_cols}"
            )
        self.feedback: list[np.ndarray] = []
        self.feedback_pes: list[ProcessingElement] = []
        for layer in accelerator.layers[:-1]:
            b = rng.normal(0.0, 1.0 / np.sqrt(n_out), size=(layer.out_dim, n_out))
            self.feedback.append(b)
            if dedicated_feedback:
                pe = ProcessingElement(
                    bank=WeightBank(
                        rows=cfg.bank_rows, cols=cfg.bank_cols,
                        tuning=cfg.tuning, noise=accelerator.noise,
                    ),
                    bpd=BalancedPhotodetector(noise=accelerator.noise),
                )
                norm = RangeNormalizer.normalize(b.ravel())
                pe.program_weights(b / norm.scale)
                pe.bank.stats.write_events = 1  # programmed exactly once
                self.feedback_pes.append(pe)
                setattr(pe, "_dfa_scale", norm.scale)
        total_pes = len(accelerator.pes) + len(self.feedback_pes)
        if total_pes > cfg.n_pes:
            raise MappingError(
                f"network + dedicated feedback needs {total_pes} PEs; "
                f"configuration has {cfg.n_pes}"
            )

    # ------------------------------------------------------------------
    def _project_error(self, k: int, error: np.ndarray) -> np.ndarray:
        """B_k e through a photonic bank (dedicated or layer PE)."""
        e_norm = RangeNormalizer.normalize(error)
        if self.dedicated_feedback:
            pe = self.feedback_pes[k]
            out = pe.bpd.detect_normalized(pe.bank.matvec(e_norm.values))
            self.acc.counters.symbols += 1
            return out * getattr(pe, "_dfa_scale") * e_norm.scale
        # Fallback: program B_k into the layer's PE (costs a write).
        layer = self.acc.layers[k]
        pe = self.acc.pes[layer.tiles[0][4]]
        b_norm = RangeNormalizer.normalize(self.feedback[k].ravel())
        pe.program_weights(self.feedback[k] / b_norm.scale)
        self.acc.counters.bank_writes += 1
        self.acc.counters.cells_written += self.feedback[k].size
        out = pe.bpd.detect_normalized(pe.bank.matvec(e_norm.values))
        self.acc.counters.symbols += 1
        return out * b_norm.scale * e_norm.scale

    def _outer(self, k: int, delta: np.ndarray, y_prev: np.ndarray) -> np.ndarray:
        pe = self.acc.pes[self.acc.layers[k].tiles[0][4]]
        d_norm = RangeNormalizer.normalize(delta)
        y_norm = RangeNormalizer.normalize(y_prev)
        grad = pe.outer_product(d_norm.values, y_norm.values)
        self.acc.counters.bank_writes += 1
        self.acc.counters.cells_written += y_prev.size * delta.size
        self.acc.counters.symbols += delta.size
        return grad * d_norm.scale * y_norm.scale

    # ------------------------------------------------------------------
    def train_step(self, x_batch: np.ndarray, labels: np.ndarray) -> float:
        """One photonic DFA step over a minibatch; returns the loss."""
        x_batch = np.atleast_2d(np.asarray(x_batch, dtype=np.float64))
        labels = np.atleast_1d(np.asarray(labels))
        if x_batch.shape[0] != labels.shape[0]:
            raise ShapeError("batch and labels must have matching lengths")
        layers = self.acc.layers
        accum = [np.zeros((l.out_dim, l.in_dim)) for l in layers]
        total_loss = 0.0
        for i, (x, label) in enumerate(zip(x_batch, labels)):
            if i > 0:
                self.acc.set_weights([layer.weights for layer in layers])
            logits = self.acc.forward(x, record=True)
            loss, grad = cross_entropy_loss(logits[None, :], np.array([label]))
            total_loss += loss
            error = grad[0]
            # Output layer uses the true error (as in DFA).
            accum[-1] += self._outer(len(layers) - 1, error, layers[-1].last_input)
            for k in range(len(layers) - 1):
                projected = self._project_error(k, error)
                pe = self.acc.pes[layers[k].tiles[0][4]]
                gains = pe.ldsu.derivative_gains()[: layers[k].out_dim]
                delta = projected * gains
                if np.max(np.abs(delta)) > 0:
                    accum[k] += self._outer(k, delta, layers[k].last_input)
        batch = x_batch.shape[0]
        self.acc.set_weights(
            [layer.weights - self.lr * a / batch for layer, a in zip(layers, accum)]
        )
        return total_loss / batch

    def predict(self, x_batch: np.ndarray) -> np.ndarray:
        """Argmax classes from hardware forward passes."""
        return np.argmax(self.acc.forward_batch(np.atleast_2d(x_batch)), axis=-1)

    def accuracy(self, x_batch: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy measured on the hardware."""
        return float(np.mean(self.predict(x_batch) == np.asarray(labels)))

    @property
    def feedback_writes(self) -> int:
        """Total bank writes spent on feedback projection so far."""
        return sum(pe.bank.stats.write_events for pe in self.feedback_pes)
