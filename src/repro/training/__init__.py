"""In-situ training on the Trident hardware.

- :mod:`repro.training.insitu` — functional photonic backpropagation using
  the PE's three Table II operating modes (forward, gradient vector, outer
  product) with LDSU-stored activation derivatives.
- :mod:`repro.training.trainer` — epoch loop, metrics, and the
  offline-vs-in-situ mismatch experiment.
- :mod:`repro.training.latency` — the analytical training-time model behind
  Table V (time to train 50 000 images).
"""

from repro.training.dfa import DFATrainer, DigitalDFA
from repro.training.insitu import InSituTrainer
from repro.training.latency import TrainingCostModel, TrainingPassCosts
from repro.training.trainer import TrainingHistory, train_classifier

__all__ = [
    "DFATrainer",
    "DigitalDFA",
    "InSituTrainer",
    "TrainingCostModel",
    "TrainingHistory",
    "TrainingPassCosts",
    "train_classifier",
]
