"""Scenario: planning an on-device fine-tuning job (Table V, interactive).

Given a CNN and a dataset size, estimate how long Trident needs to train it
and how that compares to an NVIDIA AGX Xavier — including the per-pass
breakdown that explains *why* (forward / gradient / outer-product /
weight-update retuning).

Run:  python examples/training_time_planner.py [model] [n_samples] [batch]
      defaults: resnet50 50000 32
"""

import sys

from repro.baselines.electronic import agx_xavier_training
from repro.eval.formatting import format_table
from repro.nn import build_model
from repro.training.latency import TrainingCostModel


def main(model_name: str = "resnet50", n_samples: int = 50_000, batch: int = 32) -> None:
    net = build_model(model_name)
    tcm = TrainingCostModel(batch=batch)
    costs = tcm.step_costs(net)

    print(
        format_table(
            ["pass", "time/sample (ms)", "energy/sample (mJ)"],
            [
                ["forward", costs.forward_time_s * 1e3, costs.forward_energy_j * 1e3],
                ["gradient vector (W^T, LDSU Hadamard)", costs.gradient_time_s * 1e3,
                 costs.gradient_energy_j * 1e3],
                ["outer product (dW)", costs.outer_time_s * 1e3, costs.outer_energy_j * 1e3],
                ["weight update (GST retune)", costs.update_time_s * 1e3,
                 costs.update_energy_j * 1e3],
                ["total", costs.time_s * 1e3, costs.energy_j * 1e3],
            ],
            title=f"Trident training step breakdown: {model_name}, batch {batch}",
        )
    )
    print(
        f"\ntraining expansion over inference: "
        f"{costs.expansion_over_inference:.2f}x"
    )

    trident_s = tcm.training_time_s(net, n_samples)
    xavier = agx_xavier_training(model_name)
    xavier_s = xavier.training_time_s(net, n_samples, batch=batch)
    pct = (trident_s - xavier_s) / xavier_s * 100

    print(
        format_table(
            ["accelerator", f"time for {n_samples} samples (s)"],
            [
                ["NVIDIA AGX Xavier", xavier_s],
                ["Trident", trident_s],
            ],
            title="",
        )
    )
    verdict = "faster" if pct < 0 else "slower"
    print(f"\nTrident is {abs(pct):.1f}% {verdict} than Xavier on this job.")
    print(
        "(Models with many small layers pay proportionally more GST retuning "
        "per pass — the paper's GoogleNet crossover.)"
    )


if __name__ == "__main__":
    model = sys.argv[1] if len(sys.argv) > 1 else "resnet50"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 50_000
    b = int(sys.argv[3]) if len(sys.argv) > 3 else 32
    main(model, n, b)
