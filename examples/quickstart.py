"""Quickstart: build a Trident accelerator, run a photonic forward pass,
and inspect the architecture's headline numbers.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import TridentAccelerator, TridentConfig
from repro.arch.area import AreaModel
from repro.arch.power import PowerModel
from repro.eval.formatting import format_table


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The architecture at a glance (paper Sec. IV).
    # ------------------------------------------------------------------
    config = TridentConfig()
    power = PowerModel(config)
    area = AreaModel(config)
    print(
        format_table(
            ["quantity", "value"],
            [
                ["processing elements", config.n_pes],
                ["MRRs per PE (16 x 16 bank)", config.mrrs_per_pe],
                ["PE power, tuning active (W)", config.pe_total_power_w],
                ["PE power, weights held (W)", config.pe_streaming_power_w],
                ["post-tuning power drop (%)", power.post_tuning_drop_fraction * 100],
                ["chip area (mm^2)", area.chip_area_mm2],
                ["peak throughput (TOPS)", config.peak_tops],
                ["TOPS per watt", config.tops_per_watt],
            ],
            title="Trident at 30 W (paper Sec. IV / Table III)",
        )
    )

    # ------------------------------------------------------------------
    # 2. Program a small network and run light through it.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(0)
    acc = TridentAccelerator()
    acc.map_mlp([16, 16, 8])  # two layers, one PE each
    weights = [rng.uniform(-1, 1, (16, 16)), rng.uniform(-1, 1, (8, 16))]
    acc.set_weights(weights)

    x = rng.uniform(-1, 1, 16)
    y_photonic = acc.forward(x)

    # The same math digitally (GST activation = 0.34 * relu).
    hidden = 0.34 * np.maximum(weights[0] @ x, 0)
    y_digital = weights[1] @ hidden

    print("\nphotonic output :", np.round(y_photonic, 4))
    print("digital output  :", np.round(y_digital, 4))
    print(
        "max deviation   :",
        f"{np.max(np.abs(y_photonic - y_digital)):.4f}",
        "(8-bit GST quantization)",
    )

    # ------------------------------------------------------------------
    # 3. What did that cost the hardware?
    # ------------------------------------------------------------------
    stats = acc.bank_stats()
    print(
        format_table(
            ["event", "count / value"],
            [
                ["weight-bank writes", stats.write_events],
                ["GST cells programmed", stats.cells_written],
                ["analog symbols streamed", stats.symbols],
                ["activation firings", acc.counters.activation_events],
                ["energy (nJ)", acc.energy_estimate_j() * 1e9],
                ["time (us)", acc.time_estimate_s() * 1e6],
            ],
            title="Hardware events for one programmed inference",
        )
    )


if __name__ == "__main__":
    main()
