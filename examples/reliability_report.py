"""Scenario: a deployment-readiness reliability report.

Before shipping a Trident-style accelerator into a product you want three
numbers the datasheet's headline figures hide:

1. **Wear-out** — which PCM population fails first and when (endurance);
2. **Retention** — how often weights must be refreshed at the operating
   temperature (drift);
3. **Robustness** — how much accuracy the model loses across device
   variation (Monte Carlo over programming error + detection noise).

Run:  python examples/reliability_report.py [model]
"""

import sys

from repro.analysis import endurance_report, variation_sweep
from repro.analysis.aging import aging_sweep
from repro.devices.drift import refresh_schedule
from repro.eval.formatting import format_table
from repro.nn import build_model


def main(model_name: str = "resnet50") -> None:
    net = build_model(model_name)

    # --- 1. Endurance ------------------------------------------------------
    wear = endurance_report(net)
    print(
        format_table(
            ["quantity", "value"],
            [
                ["weight-cell writes / inference", wear.weight_writes_per_inference],
                ["activation firings / cell / inference",
                 wear.activation_firings_per_inference],
                ["weight-cell lifetime (years, full rate)",
                 wear.weight_lifetime_years],
                ["activation-cell lifetime (hours, full rate)",
                 wear.activation_lifetime_hours],
                ["limiting population", wear.limiting_population],
            ],
            title=f"1. PCM endurance — {model_name} at full-rate inference",
        )
    )

    # --- 2. Retention -------------------------------------------------------
    print()
    print(
        format_table(
            ["temperature (C)", "refresh interval (days)"],
            [[r["temperature_c"], r["refresh_interval_days"]]
             for r in refresh_schedule()],
            title="2. Weight refresh schedule (half-LSB drift budget, 8-bit)",
        )
    )
    print("\n   accuracy decay without refresh at 85 C (reference task):")
    for p in aging_sweep(temperature_c=85.0):
        print(
            f"     after {p.age_s / 86400:7.1f} days: accuracy {p.accuracy:.3f} "
            f"(worst weight drift {p.worst_weight_drift:.3f})"
        )

    # --- 3. Variation robustness ---------------------------------------------
    print()
    rows = [
        [p.programming_noise_levels, p.detection_noise_std,
         p.mean_accuracy, p.worst_accuracy]
        for p in variation_sweep(
            programming_levels=(0.0, 2.0, 6.0),
            detection_stds=(0.0, 0.1),
            n_trials=4,
        )
    ]
    print(
        format_table(
            ["programming noise (levels)", "detection noise (std)",
             "mean accuracy", "worst accuracy"],
            rows,
            title="3. Accuracy under device variation (reference task, 4 instances)",
        )
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "resnet50")
