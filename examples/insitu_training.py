"""Scenario: on-device learning for a battery-powered sensor node.

A wearable classifies 10-channel sensor windows into 3 activities.  The
deployment must adapt to each user *on the device* — the paper's in-situ
training use case.  This script:

1. trains a digital model (cloud-style) and deploys it onto the noisy,
   8-bit photonic hardware — showing the train/deploy mismatch;
2. trains the same network *in situ*, every MAC and gradient flowing
   through the simulated photonic PEs (Table II's three modes);
3. reports accuracy, convergence, and what the training cost the hardware.

Run:  python examples/insitu_training.py
"""

import numpy as np

from repro import InSituTrainer, NoiseModel, TridentAccelerator
from repro.eval.formatting import format_table
from repro.nn.datasets import Dataset, make_blobs, standardize
from repro.nn.reference import DigitalMLP
from repro.training.trainer import train_classifier

DIMS = [10, 14, 3]  # 10 sensor channels -> 14 hidden -> 3 activities


def make_task(seed: int = 5):
    """Synthetic stand-in for per-user sensor data (overlapping classes)."""
    data = make_blobs(n_samples=400, n_features=10, n_classes=3, spread=2.0, seed=seed)
    data = Dataset(x=np.clip(standardize(data.x) / 3, -1, 1), y=data.y)
    return data.split(0.8, seed=1)


def main() -> None:
    train, test = make_task()
    noise = NoiseModel(
        enabled=True, thermal_noise_std=0.1, shot_noise_coeff=0.02,
        rin_coeff=0.01, seed=11,
    )

    # --- cloud-trained digital model --------------------------------------
    digital = DigitalMLP(DIMS, activation="gst", seed=7)
    for epoch in range(8):
        for xb, yb in train.batches(16, seed=epoch):
            digital.train_step(xb, yb, lr=0.4)
    digital_acc = digital.accuracy(test.x, test.y)

    # --- deploy those weights on the physical (simulated) hardware --------
    deployed = TridentAccelerator(noise=noise)
    deployed.map_mlp(DIMS)
    deployed.set_weights([w.copy() for w in digital.weights])
    deployed_acc = float(
        np.mean(np.argmax(deployed.forward_batch(test.x), axis=1) == test.y)
    )

    # --- train in situ on the same hardware -------------------------------
    acc = TridentAccelerator(noise=noise)
    acc.map_mlp(DIMS)
    acc.set_weights(
        [w.copy() for w in DigitalMLP(DIMS, activation="gst", seed=7).weights]
    )
    trainer = InSituTrainer(acc, lr=0.4)
    history = train_classifier(trainer, train, test, epochs=8, batch_size=16)

    print(
        format_table(
            ["configuration", "test accuracy"],
            [
                ["digital model (no hardware effects)", digital_acc],
                ["offline-trained weights deployed on hardware", deployed_acc],
                ["trained in situ on the hardware", history.final_test_accuracy],
            ],
            title="Train/deploy mismatch vs in-situ training (paper Sec. I)",
        )
    )

    print("\nconvergence (test accuracy per epoch):")
    print("  " + "  ".join(f"{a:.3f}" for a in history.test_accuracies))

    stats = acc.bank_stats()
    print(
        format_table(
            ["hardware cost of in-situ training", "value"],
            [
                ["weight-bank writes", stats.write_events],
                ["GST cells programmed", stats.cells_written],
                ["analog symbols", stats.symbols],
                ["mode switches (Table II)", acc.counters.mode_switches],
                ["energy (uJ)", acc.energy_estimate_j() * 1e6],
                ["time (ms)", acc.time_estimate_s() * 1e3],
            ],
            title="",
        )
    )


if __name__ == "__main__":
    main()
