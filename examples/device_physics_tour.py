"""A tour of the photonic device models underneath Trident.

Walks the physical stack bottom-up: GST states -> a PCM-loaded add-drop
ring -> a WDM channel plan with crosstalk -> the GST activation transfer
function (paper Fig 3) — printing small ASCII sweeps for each.

Run:  python examples/device_physics_tour.py
"""

import numpy as np

from repro.constants import NM
from repro.devices.activation_cell import GSTActivationCell
from repro.devices.gst import GSTCell, effective_index, patch_transmission
from repro.devices.mrr import AddDropMRR
from repro.devices.pcm_mrr import build_calibration
from repro.devices.waveguide import WDMBus, WDMChannelPlan
from repro.eval.formatting import format_table


def ascii_curve(xs, ys, width: int = 48, label: str = "") -> str:
    """Tiny horizontal bar-sweep rendering."""
    lo, hi = float(np.min(ys)), float(np.max(ys))
    span = hi - lo or 1.0
    lines = [label]
    for x, y in zip(xs, ys):
        bars = "#" * int(round((y - lo) / span * width))
        lines.append(f"  {x:10.3f} | {bars} {y:.3f}")
    return "\n".join(lines)


def main() -> None:
    # --- 1. GST material states -------------------------------------------
    fractions = np.linspace(0, 1, 9)
    n_eff = effective_index(fractions)
    t = patch_transmission(fractions, 0.3e-6)
    print(
        format_table(
            ["crystalline fraction", "n_eff (real)", "n_eff (imag)", "patch transmission"],
            [[float(c), float(n.real), float(n.imag), float(tt)]
             for c, n, tt in zip(fractions, n_eff, t)],
            title="1. GST effective medium (amorphous -> crystalline)",
        )
    )

    # --- 2. A GST cell as an 8-bit memory ---------------------------------
    cell = GSTCell()
    levels = [0, 64, 127, 191, 254]
    rows = []
    for level in levels:
        cell.program_level(level)
        rows.append([level, cell.crystalline_fraction, cell.transmission()])
    print()
    print(
        format_table(
            ["programmed level", "crystalline fraction", "transmission"],
            rows,
            title="2. One GST cell across its 255-level range (8-bit weight)",
        )
    )

    # --- 3. Add-drop ring spectrum with and without GST loss --------------
    ring = AddDropMRR()
    res = ring.geometry.nearest_resonance()
    detune = np.linspace(-1.0, 1.0, 15) * NM
    print("\n3. Add-drop ring drop-port spectrum (clean ring):")
    print(ascii_curve(detune / NM, ring.drop(res + detune), label="  detuning (nm)"))
    lossy = ring.with_extra_loss(0.7)
    print("\n   ... with a crystalline GST patch (extra loss):")
    print(ascii_curve(detune / NM, lossy.drop(res + detune), label="  detuning (nm)"))

    # --- 4. Weight calibration curve ---------------------------------------
    cal = build_calibration()
    ws = np.linspace(-1, 1, 9)
    print()
    print(
        format_table(
            ["target weight", "crystalline fraction", "GST level"],
            [[float(w), float(cal.weight_to_fraction(w)), int(cal.weights_to_levels(w))]
             for w in ws],
            title="4. Signed weight -> GST state calibration",
        )
    )

    # --- 5. WDM crosstalk ----------------------------------------------------
    bus = WDMBus(WDMChannelPlan(16))
    print(
        f"\n5. WDM bus: 16 channels at {bus.plan.spacing_m / NM:.1f} nm pitch, "
        f"span {bus.plan.span_m / NM:.1f} nm, worst-case crosstalk "
        f"{bus.worst_case_crosstalk_db():.1f} dB, insertion loss "
        f"{bus.insertion_loss_db:.2f} dB"
    )

    # --- 6. The Fig 3 activation function -----------------------------------
    act = GSTActivationCell()
    energies = np.linspace(0, 1000e-12, 15)
    outputs = act.response_energy(energies)
    print("\n6. GST activation cell transfer function (paper Fig 3):")
    print(ascii_curve(energies * 1e12, outputs * 1e12, label="  input pulse (pJ)"))
    print(
        f"\n   threshold = {act.config.threshold_j * 1e12:.0f} pJ, "
        f"slope above threshold = {act.config.slope}"
    )


if __name__ == "__main__":
    main()
