"""Scenario: choosing an edge accelerator for a camera pipeline.

You have a 30 W power envelope and a CNN to run.  This script reproduces
the paper's evaluation flow for any zoo model: scale every photonic
architecture to the budget, model the commercial electronic boards, and
print per-inference energy, throughput, and energy breakdowns.

Run:  python examples/edge_accelerator_comparison.py [model] [budget_w]
      model defaults to resnet50; budget to 30.
"""

import sys

from repro.baselines import electronic_baselines, photonic_baselines
from repro.dataflow.cost_model import PhotonicCostModel
from repro.eval.formatting import format_table
from repro.nn import build_model


def main(model_name: str = "resnet50", budget_w: float = 30.0) -> None:
    net = build_model(model_name)
    stats = net.stats()
    print(
        f"workload: {model_name} — {stats.total_macs / 1e9:.2f} GMACs, "
        f"{stats.total_params / 1e6:.1f} M parameters, "
        f"{stats.n_weight_layers} weight layers\n"
    )

    rows = []
    breakdown_rows = []
    for arch in photonic_baselines(budget_w):
        cost = PhotonicCostModel(arch, batch=128).model_cost(net)
        rows.append(
            [
                arch.name,
                "photonic",
                arch.n_pes,
                cost.inferences_per_second,
                cost.energy_j * 1e3,
                cost.effective_tops,
            ]
        )
        breakdown_rows.append(
            [
                arch.name,
                cost.energy_component("tuning") * 1e3,
                cost.energy_component("streaming") * 1e3,
                cost.energy_component("conversion") * 1e3,
                cost.energy_component("memory") * 1e3,
            ]
        )
    for acc in electronic_baselines():
        cost = acc.model_cost(net, batch=32)
        rows.append(
            [
                acc.name,
                "electronic",
                "-",
                cost.inferences_per_second,
                cost.energy_j * 1e3,
                cost.effective_tops,
            ]
        )

    print(
        format_table(
            ["accelerator", "kind", "PEs", "inf/s", "energy/inf (mJ)", "eff. TOPS"],
            rows,
            title=f"Edge accelerator comparison at {budget_w:.0f} W ({model_name})",
        )
    )
    print()
    print(
        format_table(
            ["photonic arch", "tuning (mJ)", "streaming (mJ)", "conversion (mJ)", "memory (mJ)"],
            breakdown_rows,
            title="Where the photonic energy goes",
        )
    )


if __name__ == "__main__":
    model = sys.argv[1] if len(sys.argv) > 1 else "resnet50"
    budget = float(sys.argv[2]) if len(sys.argv) > 2 else 30.0
    main(model, budget)
