"""Scenario: graceful degradation of a worn edge accelerator.

An accelerator that has been in the field for years accumulates stuck PCM
cells.  This example walks the full fault-management loop on one worn
device, then sweeps the accuracy-vs-fault-rate curve for every repair
policy:

1. Deploy a trained classifier onto an accelerator with 10 % of its cells
   stuck at weight +1 (the damaging corner) through a ``FaultManager``.
2. Watch the detector infer the fault map from program-verify readback
   alone (no oracle), and the repair ladder remap worn rows onto spares.
3. Run the fault campaign behind ``python -m repro faults`` and print the
   recovery table.

Run:  python examples/fault_campaign.py
"""

import numpy as np

from repro import TridentAccelerator, TridentConfig
from repro.devices.program_verify import ProgramVerifyConfig
from repro.eval.formatting import format_table
from repro.faults import CampaignConfig, FaultManager, RepairConfig, run_campaign


def single_device_walkthrough() -> None:
    acc = TridentAccelerator(
        config=TridentConfig(spare_rows=8, convergence_floor=0.0),
        seed=7,
        program_verify=ProgramVerifyConfig(),
    )
    acc.map_mlp([10, 14, 3])
    n_stuck = acc.inject_stuck_faults(0.10, stuck_level=254)

    manager = FaultManager(acc, config=RepairConfig(policy="spare"))
    rng = np.random.default_rng(0)
    log = manager.deploy(
        [rng.uniform(-1, 1, (14, 10)), rng.uniform(-1, 1, (3, 14))]
    )

    rows = [["stuck cells injected (ground truth)", n_stuck]]
    rows += [[f"repair log: {k}", v] for k, v in log.as_dict().items()]
    rows.append(["cells flagged by readback", manager.detector.total_flagged])
    for pe_index, bank in ((t[4], acc.pes[t[4]].bank)
                           for layer in acc.layers for t in layer.tiles):
        rows.append(
            [f"PE {pe_index} remapped rows", str(bank.remapped_rows)]
        )
    rows.append(["deploy+repair energy (uJ)", acc.energy_estimate_j() * 1e6])
    rows.append(["deploy+repair time (us)", acc.time_estimate_s() * 1e6])
    print(format_table(["quantity", "value"], rows,
                       title="Worn device: detect -> remap -> reprogram"))
    print()


def main() -> None:
    single_device_walkthrough()
    report = run_campaign(CampaignConfig())
    print(report.render())
    print()
    lost = report.clean_accuracy - report.mean_accuracy(0.05, "none")
    print(
        f"At 5% stuck cells the unrepaired accelerator loses "
        f"{lost:.3f} accuracy; spare-remap recovers "
        f"{report.recovery(0.05, 'spare'):.0%} of that."
    )


if __name__ == "__main__":
    main()
