"""Scenario: a photonic CNN classifying camera patterns on-device.

Runs a small convolutional network *functionally* on the photonic PEs:
the convolution is lowered to its weight-stationary GEMM, image patches
stream through the PCM-MRR banks as analog symbols, and the GST activation
fires between layers.  The classifier uses fixed random convolutional
features and a digitally trained linear head (extreme-learning-machine
style — conv backprop is not needed for the demo), then the *entire*
network is deployed photonically.

Run:  python examples/photonic_cnn.py
"""

import numpy as np

from repro.arch.convnet import FunctionalConvNet
from repro.devices.noise import NoiseModel
from repro.eval.formatting import format_table
from repro.nn.datasets import make_shapes
from repro.nn.reference import conv2d_reference, gst_activation


def extract_features(images: np.ndarray, wconv: np.ndarray) -> np.ndarray:
    """Digital twin of the photonic feature path (conv -> GST -> pool)."""
    feats = []
    for img in images:
        c = gst_activation(conv2d_reference(img, wconv, 1, 1))
        h, w, ch = c.shape
        p = c.reshape(h // 2, 2, w // 2, 2, ch).max(axis=(1, 3))
        feats.append(p.ravel())
    return np.stack(feats)


def train_head(features: np.ndarray, labels: np.ndarray, n_classes: int = 3,
               epochs: int = 60, lr: float = 0.5) -> np.ndarray:
    """Plain softmax regression on the conv features."""
    from repro.nn.reference import cross_entropy_loss

    rng = np.random.default_rng(0)
    w = rng.normal(0, 0.1, size=(n_classes, features.shape[1]))
    for _ in range(epochs):
        logits = features @ w.T
        _, grad = cross_entropy_loss(logits, labels)
        w -= lr * (grad.T @ features)
    return w


def main() -> None:
    rng = np.random.default_rng(7)
    x, y = make_shapes(400, size=8, noise=0.15, seed=3)
    split = 320
    x_train, y_train = x[:split], y[:split]
    x_test, y_test = x[split:], y[split:]

    # Fixed random conv filters + digitally trained head.
    wconv = rng.uniform(-1, 1, (6, 3, 3, 1))
    features = extract_features(x_train, wconv)
    scale = np.abs(features).max()
    whead = train_head(features / scale, y_train)

    # Deploy the full network photonically (ideal and noisy instances).
    rows = []
    for label, noise in (
        ("ideal hardware", NoiseModel.ideal()),
        ("noisy hardware", NoiseModel.realistic(seed=11)),
    ):
        net = FunctionalConvNet(
            (8, 8, 1),
            [("conv", 6, 3, 1, 1), ("pool", 2), ("flatten",), ("dense", 3)],
            noise=noise,
        )
        net.set_weights([wconv, whead / scale])
        logits = net.forward_batch(x_test)
        acc = float(np.mean(np.argmax(logits, axis=1) == y_test))
        rows.append([label, acc, net.symbols, net.bank_stats().cells_written])

    # Digital reference accuracy.
    test_features = extract_features(x_test, wconv) / scale
    digital_acc = float(
        np.mean(np.argmax(test_features @ whead.T, axis=1) == y_test)
    )
    rows.insert(0, ["digital reference", digital_acc, "-", "-"])

    print(
        format_table(
            ["deployment", "test accuracy", "analog symbols", "GST cells programmed"],
            rows,
            title="Photonic CNN on the stripes/checkerboard task (80 test images)",
        )
    )


if __name__ == "__main__":
    main()
