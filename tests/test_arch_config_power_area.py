"""Tests for TridentConfig, the power model (Table III), and area (Fig 5)."""

import pytest

from repro.arch.area import AreaModel, PEAreaBreakdown
from repro.arch.config import TridentConfig
from repro.arch.power import PEPowerBreakdown, PowerModel
from repro.devices.tuning import ThermalTuning
from repro.errors import ConfigError


class TestTridentConfig:
    def test_paper_geometry(self, config):
        assert config.n_pes == 44
        assert config.mrrs_per_pe == 256

    def test_pe_power_matches_table3_total(self, config):
        assert config.pe_total_power_w == pytest.approx(0.676, abs=0.001)

    def test_streaming_power_matches_paper_011w(self, config):
        # Sec. IV: "power draw is reduced by 83.34% from 0.67 W to 0.11 W".
        assert config.pe_streaming_power_w == pytest.approx(0.11, abs=0.005)

    def test_peak_tops_matches_paper(self, config):
        assert config.peak_tops == pytest.approx(7.8, rel=0.01)

    def test_tops_per_watt(self, config):
        # 7.8 / 30 = 0.26 (the paper's 0.29 is internally inconsistent).
        assert config.tops_per_watt == pytest.approx(0.26, abs=0.005)

    def test_44_pes_fit_30w(self, config):
        assert config.n_pes * config.pe_total_power_w <= config.power_budget_w

    def test_45_pes_would_not_fit(self, config):
        assert 45 * config.pe_total_power_w > config.power_budget_w

    def test_symbol_rate_below_max_clock(self, config):
        assert config.symbol_rate_hz < config.max_clock_hz

    def test_scaled_to_budget(self, config):
        small = config.scaled_to_budget(15.0)
        assert small.n_pes == 22
        assert small.power_budget_w == 15.0

    def test_scaled_to_budget_rejects_tiny(self, config):
        with pytest.raises(ConfigError):
            config.scaled_to_budget(0.1)

    def test_rejects_symbol_rate_above_clock(self):
        with pytest.raises(ConfigError):
            TridentConfig(symbol_rate_hz=2e9)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigError):
            TridentConfig(n_pes=0)
        with pytest.raises(ConfigError):
            TridentConfig(bank_rows=0)

    def test_rejects_negative_power_component(self):
        with pytest.raises(ConfigError):
            TridentConfig(cache_power_w=-1.0)


class TestPowerBreakdown:
    def test_tuning_dominates_at_8334_pct(self, config):
        b = PEPowerBreakdown.from_config(config)
        assert b.dominant.name == "GST MRR Tuning"
        assert b.dominant.percentage == pytest.approx(83.34, abs=0.05)

    def test_all_table3_rows_present(self, config):
        b = PEPowerBreakdown.from_config(config)
        names = {c.name for c in b.components}
        assert names == {
            "LDSU", "E/O Laser", "GST MRR Tuning", "GST MRR Read",
            "GST Activation Function Reset", "BPD and TIA", "Cache",
        }

    def test_percentages_sum_to_100(self, config):
        b = PEPowerBreakdown.from_config(config)
        assert sum(c.percentage for c in b.components) == pytest.approx(100.0)

    def test_component_lookup(self, config):
        b = PEPowerBreakdown.from_config(config)
        assert b.component("Cache").power_w == pytest.approx(30e-3)
        with pytest.raises(KeyError):
            b.component("Flux Capacitor")

    def test_as_rows_includes_total(self, config):
        rows = PEPowerBreakdown.from_config(config).as_rows()
        assert rows[-1]["component"] == "Total"
        assert rows[-1]["percentage"] == 100.0


class TestPowerModel:
    def test_max_pes_is_44(self, config):
        assert PowerModel(config).max_pes_for_budget(30.0) == 44

    def test_chip_powers(self, config):
        pm = PowerModel(config)
        assert pm.chip_tuning_power_w == pytest.approx(44 * config.pe_total_power_w)
        assert pm.chip_streaming_power_w < pm.chip_tuning_power_w

    def test_post_tuning_drop_8334(self, config):
        assert PowerModel(config).post_tuning_drop_fraction == pytest.approx(0.8334, abs=0.0005)

    def test_fits_budget(self, config):
        assert PowerModel(config).fits_budget()

    def test_rejects_bad_budget(self, config):
        with pytest.raises(ConfigError):
            PowerModel(config).max_pes_for_budget(-5.0)


class TestAreaModel:
    def test_chip_area_matches_paper(self, config):
        assert AreaModel(config).chip_area_mm2 == pytest.approx(604.6, abs=0.5)

    def test_under_one_square_inch(self, config):
        assert AreaModel(config).fits_one_square_inch

    def test_tia_dominates(self, config):
        b = PEAreaBreakdown.from_config(config)
        assert b.dominant.name == "TIA"
        assert b.dominant.fraction > 0.5

    def test_cache_macro_matches_quoted_footprint(self, config):
        b = PEAreaBreakdown.from_config(config)
        assert b.component("Cache").area_mm2 == pytest.approx(0.092 * 0.085)

    def test_fractions_sum_to_one(self, config):
        b = PEAreaBreakdown.from_config(config)
        assert sum(c.fraction for c in b.components) == pytest.approx(1.0)

    def test_rows_scale_with_pe_count(self, config):
        half = TridentConfig(n_pes=22)
        assert AreaModel(half).chip_area_mm2 == pytest.approx(
            AreaModel(config).chip_area_mm2 / 2
        )

    def test_unknown_component_rejected(self, config):
        with pytest.raises(KeyError):
            PEAreaBreakdown.from_config(config).component("Nonexistent")

    def test_as_rows_total(self, config):
        rows = AreaModel(config).as_rows()
        assert rows[-1]["component"] == "Total"
        assert rows[-1]["area_mm2"] == pytest.approx(604.6, abs=0.5)


class TestAlternativeTuning:
    def test_thermal_config_has_nonzero_hold(self):
        cfg = TridentConfig(tuning=ThermalTuning())
        assert cfg.tuning.hold_power_w > 0
        assert cfg.tuning.volatile
