"""Tests for multi-accelerator sharding (repro.sharding) and its serving
worker (repro.serving.sharded): planner correctness, bit-identical
pipeline execution, conserved accounting, overlap scheduling, and
stage-fault atomicity."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.arch import TridentAccelerator, TridentConfig
from repro.devices.program_verify import ProgramVerifyConfig
from repro.errors import (
    CheckpointError,
    MappingError,
    ServingError,
    ShardingError,
    WorkerFault,
)
from repro.serving import (
    InferenceRequest,
    ServerConfig,
    ShardedWorker,
    TridentServer,
)
from repro.serving.shard_workload import (
    ShardWorkloadConfig,
    build_pipeline_worker,
    build_reference_accelerator,
    makespan_s,
    run_shard_workload,
)
from repro.sharding import (
    build_pipeline,
    layer_tile_count,
    plan_from_cuts,
    plan_pipeline,
    reduction_tile_count,
    slice_stage_weights,
)

SHARD = TridentConfig(n_pes=8, bank_rows=8, bank_cols=8)
DETERMINISTIC_PV = ProgramVerifyConfig(write_std_levels=0.0, read_std_levels=0.0)


def make_weights(dims, seed=0, sigma=0.6):
    rng = np.random.default_rng(seed)
    return [
        rng.normal(0.0, sigma, (dims[i + 1], dims[i]))
        for i in range(len(dims) - 1)
    ]


def make_reference(dims, weights, config=SHARD, program_verify=None):
    """One big accelerator with the same bank geometry as the shards."""
    import dataclasses

    total = sum(
        layer_tile_count(o, i, config.bank_rows, config.bank_cols)
        for i, o in zip(dims[:-1], dims[1:])
    )
    big = dataclasses.replace(config, n_pes=total)
    acc = TridentAccelerator(config=big, program_verify=program_verify)
    acc.map_mlp(list(dims))
    acc.set_weights(weights)
    return acc


# ---------------------------------------------------------------------------
class TestPlanner:
    def test_tile_helpers(self):
        assert layer_tile_count(32, 8, 8, 8) == 4
        assert layer_tile_count(9, 9, 8, 8) == 4
        assert reduction_tile_count(8, 8) == 1
        assert reduction_tile_count(9, 8) == 2

    def test_minimal_stage_count_and_capacity(self):
        plan = plan_pipeline([8, 32, 32, 8], SHARD)
        assert plan.n_stages == 3
        for stage in plan.stages:
            if not stage.row_sharded:
                assert stage.n_tiles <= SHARD.n_pes

    def test_stages_cover_layers_contiguously(self):
        plan = plan_pipeline([8, 32, 32, 8], SHARD)
        bounds = [(s.layer_start, s.layer_stop) for s in plan.stages]
        assert bounds[0][0] == 0 and bounds[-1][1] == 3
        for (_, stop), (start, _) in zip(bounds[:-1], bounds[1:]):
            assert stop == start

    def test_wide_layer_row_sharded_at_bank_boundaries(self):
        plan = plan_pipeline([8, 128], SHARD)
        (stage,) = plan.stages
        assert stage.row_sharded and stage.n_parts == 2
        for r0, r1 in stage.row_splits:
            assert r0 % SHARD.bank_rows == 0
        assert stage.row_splits[0][1] == stage.row_splits[1][0]
        assert stage.row_splits[-1][1] == 128

    def test_unshardable_reduction_raises(self):
        # One row strip of a 128-wide input needs 16 reduction tiles > 8 PEs.
        with pytest.raises(ShardingError):
            plan_pipeline([128, 8], SHARD)

    def test_requested_stage_count_bounds(self):
        with pytest.raises(ShardingError):
            plan_pipeline([8, 32, 32, 8], SHARD, n_stages=2)  # below minimum
        with pytest.raises(ShardingError):
            plan_pipeline([8, 16, 8], SHARD, n_stages=3)  # more than layers

    def test_explicit_cuts_validate(self):
        plan = plan_from_cuts([8, 32, 32, 8], [1, 2], SHARD)
        assert [s.layer_start for s in plan.stages] == [0, 1, 2]
        with pytest.raises(ShardingError):
            plan_from_cuts([8, 32, 32, 8], [5], SHARD)
        with pytest.raises(ShardingError):
            plan_from_cuts([8, 32, 32, 8], [1, 1], SHARD)
        with pytest.raises(ShardingError):  # stage [0, 2) overflows a shard
            plan_from_cuts([8, 32, 32, 8], [2], SHARD)

    def test_latency_arithmetic(self):
        plan = plan_pipeline([8, 32, 32, 8], SHARD, batch=4)
        n = 7
        assert plan.pipeline_latency_s(n) == pytest.approx(
            plan.fill_s + (n - 1) * plan.bottleneck_s
        )
        assert plan.serialized_latency_s(n) == pytest.approx(n * plan.fill_s)
        assert plan.overlap_speedup(n) > 1.0
        with pytest.raises(ShardingError):
            plan.pipeline_latency_s(0)

    def test_plan_render_and_dict(self):
        plan = plan_pipeline([8, 32, 32, 8], SHARD)
        d = plan.as_dict()
        assert d["n_stages"] == 3 and len(d["stages"]) == 3
        assert "bottleneck" in plan.render()

    def test_rejects_degenerate_models(self):
        with pytest.raises(ShardingError):
            plan_pipeline([8], SHARD)
        with pytest.raises(ShardingError):
            plan_pipeline([8, 0], SHARD)
        with pytest.raises(ShardingError):
            plan_pipeline([8, 16], SHARD, batch=0)


# ---------------------------------------------------------------------------
class TestPipelineEquivalence:
    DIMS = [8, 32, 32, 8]

    def test_bit_identical_forward_batch(self):
        weights = make_weights(self.DIMS, seed=1)
        plan = plan_pipeline(self.DIMS, SHARD)
        pipe = build_pipeline(plan, weights, config=SHARD)
        ref = make_reference(self.DIMS, weights)
        xs = np.random.default_rng(2).uniform(-1, 1, (5, 8))
        assert np.array_equal(pipe.forward_batch(xs), ref.forward_batch(xs))
        assert np.array_equal(pipe.forward(xs[0]), ref.forward(xs[0]))

    def test_bit_identical_with_deterministic_verify(self):
        weights = make_weights(self.DIMS, seed=1)
        plan = plan_pipeline(self.DIMS, SHARD)
        pipe = build_pipeline(
            plan, weights, config=SHARD, program_verify=DETERMINISTIC_PV
        )
        ref = make_reference(
            self.DIMS, weights, program_verify=DETERMINISTIC_PV
        )
        xs = np.random.default_rng(3).uniform(-1, 1, (4, 8))
        assert np.array_equal(pipe.forward_batch(xs), ref.forward_batch(xs))

    def test_row_sharded_wide_layer_bit_identical(self):
        dims = [8, 128]
        weights = make_weights(dims, seed=4, sigma=1.0)
        plan = plan_pipeline(dims, SHARD)
        assert plan.stages[0].row_sharded
        pipe = build_pipeline(plan, weights, config=SHARD)
        ref = make_reference(dims, weights)
        xs = np.random.default_rng(5).uniform(-1, 1, (3, 8))
        assert np.array_equal(pipe.forward_batch(xs), ref.forward_batch(xs))

    def test_event_accounting_conserved(self):
        weights = make_weights(self.DIMS, seed=1)
        plan = plan_pipeline(self.DIMS, SHARD)
        pipe = build_pipeline(plan, weights, config=SHARD)
        ref = make_reference(self.DIMS, weights)
        xs = np.random.default_rng(6).uniform(-1, 1, (5, 8))
        pipe.forward_batch(xs)
        ref.forward_batch(xs)
        got = pipe.counters().as_dict()
        want = ref.counters.as_dict()
        for key in ("bank_writes", "cells_written", "symbols",
                    "activation_events"):
            assert got[key] == want[key], key
        assert pipe.energy_estimate_j() == pytest.approx(
            ref.energy_estimate_j(), rel=1e-12
        )
        assert pipe.time_estimate_s() == pytest.approx(
            ref.time_estimate_s(), rel=1e-12
        )

    def test_checkpoint_roundtrip_preserves_outputs(self):
        weights = make_weights(self.DIMS, seed=1)
        plan = plan_pipeline(self.DIMS, SHARD)
        pipe = build_pipeline(plan, weights, config=SHARD)
        xs = np.random.default_rng(7).uniform(-1, 1, (4, 8))
        expected = pipe.forward_batch(xs)
        snapshot = pipe.state_dict()
        restored = build_pipeline(plan, weights, config=SHARD)
        restored.load_state_dict(snapshot)
        assert np.array_equal(restored.forward_batch(xs), expected)

    def test_checkpoint_shape_mismatch_raises(self):
        weights = make_weights(self.DIMS, seed=1)
        plan = plan_pipeline(self.DIMS, SHARD)
        pipe = build_pipeline(plan, weights, config=SHARD)
        other_dims = [8, 16, 8]
        other = build_pipeline(
            plan_pipeline(other_dims, SHARD),
            make_weights(other_dims, seed=2),
            config=SHARD,
        )
        with pytest.raises(CheckpointError):
            other.load_state_dict(pipe.state_dict())

    def test_weight_scale_override_guard(self):
        acc = TridentAccelerator(config=SHARD)
        acc.map_mlp([8, 8])
        w = np.full((8, 8), 2.0)
        with pytest.raises(MappingError):
            acc.set_weights([w], weight_scales=[1.5])  # below the peak

    def test_slice_stage_weights_validates(self):
        plan = plan_pipeline(self.DIMS, SHARD)
        with pytest.raises(ShardingError):
            slice_stage_weights(plan, make_weights([8, 16, 8]))


# ---------------------------------------------------------------------------
class TestShardingProperties:
    """Hypothesis: any valid cut is bit-identical and conserves events."""

    PROP = TridentConfig(n_pes=64, bank_rows=4, bank_cols=4)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        dims=st.lists(st.integers(2, 10), min_size=2, max_size=4),
        cut_bits=st.integers(0, 7),
        batch=st.integers(1, 3),
        seed=st.integers(0, 2**16),
        with_verify=st.booleans(),
        trace=st.booleans(),
        checkpoint=st.booleans(),
    )
    def test_any_valid_cut_is_equivalent(
        self, dims, cut_bits, batch, seed, with_verify, trace, checkpoint
    ):
        n_layers = len(dims) - 1
        cuts = [
            k for k in range(1, n_layers) if cut_bits & (1 << (k - 1))
        ]
        plan = plan_from_cuts(dims, cuts, self.PROP)
        weights = make_weights(dims, seed=seed, sigma=0.8)
        pv = DETERMINISTIC_PV if with_verify else None
        pipe = build_pipeline(
            plan, weights, config=self.PROP, program_verify=pv
        )
        ref = make_reference(
            dims, weights, config=self.PROP, program_verify=pv
        )
        xs = np.random.default_rng(seed + 1).uniform(-1, 1, (batch, dims[0]))

        if checkpoint:
            snapshot = pipe.state_dict()
            pipe = build_pipeline(
                plan, weights, config=self.PROP, program_verify=pv
            )
            pipe.load_state_dict(snapshot)

        pipe_before = pipe.counters().as_dict()
        ref_before = ref.counters.as_dict()
        if trace:
            with telemetry.session():
                got = pipe.forward_batch(xs)
        else:
            got = pipe.forward_batch(xs)
        want = ref.forward_batch(xs)
        assert np.array_equal(got, want)

        # Forward-pass event deltas conserve exactly regardless of how
        # the pipeline was (re)programmed or restored.
        pipe_after = pipe.counters().as_dict()
        ref_after = ref.counters.as_dict()
        for key in ("symbols", "activation_events"):
            assert (
                pipe_after[key] - pipe_before[key]
                == ref_after[key] - ref_before[key]
            ), key
        if not checkpoint:
            for key in ("bank_writes", "cells_written"):
                assert pipe_after[key] == ref_after[key], key
            assert pipe.energy_estimate_j() == pytest.approx(
                ref.energy_estimate_j(), rel=1e-9
            )


# ---------------------------------------------------------------------------
class TestShardedWorkerScheduling:
    CFG = ShardWorkloadConfig()

    def test_flow_shop_overlap_times(self):
        worker = build_pipeline_worker(self.CFG, overlap=True)
        b = self.CFG.server.max_batch
        stage_times = [s.service_time_s(b) for s in worker.stages]
        fill = sum(stage_times)
        ingest0, finish0 = worker.dispatch_times_s(0.0, b)
        assert finish0 == pytest.approx(fill)
        assert ingest0 == pytest.approx(stage_times[0])
        # Second batch enters the moment stage 0 frees; the flow-shop
        # recurrence then gives the classic fill + bottleneck finish.
        ingest1, finish1 = worker.dispatch_times_s(ingest0, b)
        assert finish1 > finish0
        assert finish1 == pytest.approx(fill + max(stage_times))
        assert ingest1 == pytest.approx(2 * stage_times[0])

    def test_serialized_holds_pipe_exclusive(self):
        worker = build_pipeline_worker(self.CFG, overlap=False)
        b = self.CFG.server.max_batch
        fill = worker.service_time_s(b)
        ingest, finish = worker.dispatch_times_s(0.0, b)
        assert ingest == finish == pytest.approx(fill)
        ingest2, finish2 = worker.dispatch_times_s(finish, b)
        assert finish2 == pytest.approx(2 * fill)
        assert ingest2 == finish2

    def test_service_time_is_pipeline_fill(self):
        worker = build_pipeline_worker(self.CFG, overlap=True)
        b = 4
        assert worker.service_time_s(b) == pytest.approx(
            sum(s.service_time_s(b) for s in worker.stages)
        )

    def test_degraded_stage_fails_batch_atomically(self):
        worker = build_pipeline_worker(self.CFG, overlap=True)
        xs = np.random.default_rng(0).uniform(-1, 1, (4, self.CFG.dims[0]))
        worker.execute(xs)  # healthy baseline
        executed_before = worker.batches_executed
        worker.degrade_stage(1, 0.08, stuck_level=254)
        assert not worker.healthy
        with pytest.raises(WorkerFault) as excinfo:
            worker.execute(xs)
        assert "stage 1" in str(excinfo.value)
        assert worker.batches_executed == executed_before
        assert worker.batches_failed == 1

    def test_repair_restores_health_and_outputs(self):
        worker = build_pipeline_worker(self.CFG, overlap=True)
        reference = build_reference_accelerator(self.CFG)
        xs = np.random.default_rng(1).uniform(-1, 1, (4, self.CFG.dims[0]))
        expected = reference.forward_batch(xs)
        assert np.array_equal(worker.execute(xs), expected)
        worker.degrade_stage(1, 0.04, stuck_level=254)
        with pytest.raises(WorkerFault):
            worker.execute(xs)
        assert worker.repair()
        assert worker.healthy
        assert np.array_equal(worker.execute(xs), expected)

    def test_stage_manager_count_validated(self):
        worker = build_pipeline_worker(self.CFG, overlap=True)
        with pytest.raises(ServingError):
            ShardedWorker(1, worker.pipeline, stage_managers=[[]])


# ---------------------------------------------------------------------------
class TestShardServing:
    """Integration: the server drives a sharded worker end to end."""

    CFG = ShardWorkloadConfig(n_requests=96)

    def test_serves_capacity_infeasible_model_bit_identically(self):
        report, _, _ = run_shard_workload(self.CFG, overlap=True)
        assert report.conservation_ok()
        assert report.completion_rate == 1.0
        reference = build_reference_accelerator(self.CFG)
        groups = {}
        for c in report.completed:
            groups.setdefault((c.dispatch_s, c.finish_s), []).append(c)
        for batch in groups.values():
            xs = np.stack([c.request.x for c in batch])
            expected = reference.forward_batch(xs)
            for i, c in enumerate(batch):
                assert np.array_equal(np.asarray(c.output), expected[i])

    def test_overlap_beats_serialized(self):
        overlap_report, _, _ = run_shard_workload(self.CFG, overlap=True)
        serial_report, _, _ = run_shard_workload(self.CFG, overlap=False)
        assert 0.0 < makespan_s(overlap_report) < makespan_s(serial_report)

    def test_overlap_keeps_multiple_batches_in_flight(self):
        _, server, _ = run_shard_workload(self.CFG, overlap=True)
        dispatches = [
            d for d in server.decisions if d["kind"] == "dispatch"
        ]
        completes = [
            d for d in server.decisions if d["kind"] == "complete"
        ]
        # Some dispatch must happen strictly between another batch's
        # dispatch and completion — overlap in the decision log itself.
        in_flight = 0
        max_in_flight = 0
        for d in server.decisions:
            if d["kind"] == "dispatch":
                in_flight += 1
                max_in_flight = max(max_in_flight, in_flight)
            elif d["kind"] in ("complete", "batch_failed"):
                in_flight -= 1
        assert dispatches and completes
        assert max_in_flight >= 2

    def test_stage_fault_trips_drains_and_recovers(self):
        report, _, worker = run_shard_workload(
            self.CFG, overlap=True, degrade=True
        )
        assert report.conservation_ok()
        stage_events = worker.stage_breaker_transitions
        assert any(
            t["to"] == "open" and t["stage"] == self.CFG.degrade_stage
            for t in stage_events
        )
        assert any(
            t["to"] == "closed" and t["stage"] == self.CFG.degrade_stage
            for t in stage_events
        )
        assert any(t["to"] == "open" for t in report.breaker_transitions)

    def test_replay_is_bit_identical(self):
        first, _, _ = run_shard_workload(self.CFG, overlap=True, degrade=True)
        second, _, _ = run_shard_workload(self.CFG, overlap=True, degrade=True)
        assert first.decisions == second.decisions

    def test_stage_spans_emitted(self):
        small = ShardWorkloadConfig(n_requests=24)
        with telemetry.session() as t:
            run_shard_workload(small, overlap=True)
        names = {r.name for r in t.tracer.records}
        assert "shard_stage" in names
        assert "serve_batch" in names

    def test_plain_worker_dispatch_unchanged(self):
        """AcceleratorWorker still serves exactly as before the overlap
        plumbing (ingest-free == finish, one batch in flight)."""
        from repro.serving import build_worker

        worker = build_worker(0, (6, 4), seed=3)
        ingest, finish = worker.dispatch_times_s(2.0, 4)
        assert ingest == finish == pytest.approx(2.0 + worker.service_time_s(4))
        server = TridentServer([worker], config=ServerConfig(max_batch=4))
        arrivals = [
            InferenceRequest(
                request_id=i,
                x=np.zeros(6),
                arrival_s=i * 1e-7,
                deadline_s=None,
                priority=0,
            )
            for i in range(12)
        ]
        report = server.run(arrivals)
        assert report.completion_rate == 1.0
        in_flight = 0
        for d in server.decisions:
            if d["kind"] == "dispatch":
                in_flight += 1
                assert in_flight == 1
            elif d["kind"] in ("complete", "batch_failed"):
                in_flight -= 1
