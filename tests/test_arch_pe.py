"""Tests for the processing element's three operating modes."""

import numpy as np
import pytest

from repro.arch.pe import ProcessingElement
from repro.arch.weight_bank import WeightBank
from repro.devices.ldsu import LDSU
from repro.devices.noise import NoiseModel
from repro.errors import ShapeError


@pytest.fixture
def pe():
    return ProcessingElement()


class TestConstruction:
    def test_defaults(self, pe):
        assert pe.rows == 16
        assert pe.cols == 16
        assert len(pe.tias) == 16
        assert pe.ldsu.n_rows == 16

    def test_ldsu_row_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            ProcessingElement(bank=WeightBank(rows=8), ldsu=LDSU(n_rows=16))

    def test_tia_count_mismatch_rejected(self):
        from repro.devices.tia import TransimpedanceAmplifier

        with pytest.raises(ShapeError):
            ProcessingElement(tias=[TransimpedanceAmplifier()])

    def test_with_noise_factory(self):
        pe = ProcessingElement.with_noise(NoiseModel.realistic(seed=0), rows=8, cols=8)
        assert pe.rows == 8
        assert pe.bank.noise.enabled
        assert pe.bpd.noise.enabled


class TestForward:
    def test_matches_digital_gst_network(self, pe, rng):
        w = rng.uniform(-1, 1, (16, 16))
        x = rng.uniform(-1, 1, 16)
        pe.program_weights(w)
        out = pe.forward(x)
        expected = 0.34 * np.maximum(w @ x, 0)
        assert np.max(np.abs(out - expected)) < 0.1

    def test_no_activation_returns_logits(self, pe, rng):
        w = rng.uniform(-1, 1, (8, 8))
        x = rng.uniform(-1, 1, 8)
        pe.program_weights(w)
        logits = pe.forward(x, apply_activation=False)
        assert np.max(np.abs(logits - w @ x)) < 0.05

    def test_ldsu_captures_derivative_bits(self, pe, rng):
        w = rng.uniform(-1, 1, (16, 16))
        x = rng.uniform(-1, 1, 16)
        pe.program_weights(w)
        logits = pe.forward(x, apply_activation=False)
        expected_bits = logits > 0
        assert np.array_equal(pe.ldsu.bits, expected_bits)

    def test_capture_can_be_disabled(self, pe, rng):
        pe.program_weights(rng.uniform(-1, 1, (16, 16)))
        pe.forward(rng.uniform(-1, 1, 16), capture_derivative=False)
        assert not pe.ldsu.bits.any()

    def test_activation_firing_counted(self, pe, rng):
        pe.program_weights(rng.uniform(-1, 1, (16, 16)))
        pe.forward(rng.uniform(-1, 1, 16))
        assert pe.activation.firing_events > 0


class TestGradientVector:
    def test_hadamard_with_ldsu_gains(self, pe, rng):
        n = 16
        # Forward pass on W to latch f'(h).
        w = rng.uniform(-1, 1, (n, n))
        x = rng.uniform(-1, 1, n)
        pe.program_weights(w)
        h = pe.forward(x, apply_activation=False)
        # Backward with W_next^T programmed.
        w_next = rng.uniform(-1, 1, (n, n))
        pe.program_weights(w_next.T)
        delta = rng.uniform(-1, 1, n)
        got = pe.gradient_vector(delta)
        expected = (w_next.T @ delta) * np.where(h > 0, 0.34, 0.0)
        assert np.max(np.abs(got - expected)) < 0.1

    def test_dead_rows_zeroed(self, pe, rng):
        n = 8
        pe.program_weights(-np.ones((n, n)))  # all logits negative
        pe.forward(np.ones(n) * 0.5, apply_activation=False)
        pe.program_weights(rng.uniform(-1, 1, (n, n)))
        out = pe.gradient_vector(rng.uniform(-1, 1, n))
        assert np.allclose(out, 0.0)


class TestOuterProduct:
    def test_matches_numpy_outer(self, pe, rng):
        d = rng.uniform(-1, 1, 10)
        y = rng.uniform(-1, 1, 12)
        got = pe.outer_product(d, y)
        assert got.shape == (10, 12)
        assert np.max(np.abs(got - np.outer(d, y))) < 0.05

    def test_full_bank(self, pe, rng):
        d = rng.uniform(-1, 1, 16)
        y = rng.uniform(-1, 1, 16)
        got = pe.outer_product(d, y)
        assert np.max(np.abs(got - np.outer(d, y))) < 0.05

    def test_rejects_oversize(self, pe, rng):
        with pytest.raises(ShapeError):
            pe.outer_product(rng.uniform(-1, 1, 17), rng.uniform(-1, 1, 4))
        with pytest.raises(ShapeError):
            pe.outer_product(rng.uniform(-1, 1, 4), rng.uniform(-1, 1, 17))

    def test_rejects_matrices(self, pe):
        with pytest.raises(ShapeError):
            pe.outer_product(np.zeros((2, 2)), np.zeros(2))

    def test_costs_one_write_and_len_delta_symbols(self, pe, rng):
        d = rng.uniform(-1, 1, 6)
        y = rng.uniform(-1, 1, 4)
        pe.outer_product(d, y)
        assert pe.bank.stats.write_events == 1
        assert pe.bank.stats.symbols == 6


class TestTIAGains:
    def test_set_and_reset(self, pe):
        gains = np.linspace(0, 1, 16)
        pe.set_tia_gains(gains)
        assert np.allclose([t.gain for t in pe.tias], gains)
        pe.reset_tia_gains()
        assert all(t.gain == 1.0 for t in pe.tias)

    def test_rejects_wrong_length(self, pe):
        with pytest.raises(ShapeError):
            pe.set_tia_gains(np.ones(4))

    def test_write_energy_property(self, pe, rng):
        pe.program_weights(rng.uniform(-1, 1, (16, 16)))
        assert pe.write_energy_j == pytest.approx(256 * 660e-12)
