"""Tests for the processing element's three operating modes."""

import numpy as np
import pytest

from repro.arch.pe import ProcessingElement
from repro.arch.weight_bank import WeightBank
from repro.devices.ldsu import LDSU
from repro.devices.noise import NoiseModel
from repro.errors import ShapeError


@pytest.fixture
def pe():
    return ProcessingElement()


class TestConstruction:
    def test_defaults(self, pe):
        assert pe.rows == 16
        assert pe.cols == 16
        assert len(pe.tias) == 16
        assert pe.ldsu.n_rows == 16

    def test_ldsu_row_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            ProcessingElement(bank=WeightBank(rows=8), ldsu=LDSU(n_rows=16))

    def test_tia_count_mismatch_rejected(self):
        from repro.devices.tia import TransimpedanceAmplifier

        with pytest.raises(ShapeError):
            ProcessingElement(tias=[TransimpedanceAmplifier()])

    def test_with_noise_factory(self):
        pe = ProcessingElement.with_noise(NoiseModel.realistic(seed=0), rows=8, cols=8)
        assert pe.rows == 8
        assert pe.bank.noise.enabled
        assert pe.bpd.noise.enabled


class TestForward:
    def test_matches_digital_gst_network(self, pe, rng):
        w = rng.uniform(-1, 1, (16, 16))
        x = rng.uniform(-1, 1, 16)
        pe.program_weights(w)
        out = pe.forward(x)
        expected = 0.34 * np.maximum(w @ x, 0)
        assert np.max(np.abs(out - expected)) < 0.1

    def test_no_activation_returns_logits(self, pe, rng):
        w = rng.uniform(-1, 1, (8, 8))
        x = rng.uniform(-1, 1, 8)
        pe.program_weights(w)
        logits = pe.forward(x, apply_activation=False)
        assert np.max(np.abs(logits - w @ x)) < 0.05

    def test_ldsu_captures_derivative_bits(self, pe, rng):
        w = rng.uniform(-1, 1, (16, 16))
        x = rng.uniform(-1, 1, 16)
        pe.program_weights(w)
        logits = pe.forward(x, apply_activation=False)
        expected_bits = logits > 0
        assert np.array_equal(pe.ldsu.bits, expected_bits)

    def test_capture_can_be_disabled(self, pe, rng):
        pe.program_weights(rng.uniform(-1, 1, (16, 16)))
        pe.forward(rng.uniform(-1, 1, 16), capture_derivative=False)
        assert not pe.ldsu.bits.any()

    def test_activation_firing_counted(self, pe, rng):
        pe.program_weights(rng.uniform(-1, 1, (16, 16)))
        pe.forward(rng.uniform(-1, 1, 16))
        assert pe.activation.firing_events > 0


class TestGradientVector:
    def test_hadamard_with_ldsu_gains(self, pe, rng):
        n = 16
        # Forward pass on W to latch f'(h).
        w = rng.uniform(-1, 1, (n, n))
        x = rng.uniform(-1, 1, n)
        pe.program_weights(w)
        h = pe.forward(x, apply_activation=False)
        # Backward with W_next^T programmed.
        w_next = rng.uniform(-1, 1, (n, n))
        pe.program_weights(w_next.T)
        delta = rng.uniform(-1, 1, n)
        got = pe.gradient_vector(delta)
        expected = (w_next.T @ delta) * np.where(h > 0, 0.34, 0.0)
        assert np.max(np.abs(got - expected)) < 0.1

    def test_dead_rows_zeroed(self, pe, rng):
        n = 8
        pe.program_weights(-np.ones((n, n)))  # all logits negative
        pe.forward(np.ones(n) * 0.5, apply_activation=False)
        pe.program_weights(rng.uniform(-1, 1, (n, n)))
        out = pe.gradient_vector(rng.uniform(-1, 1, n))
        assert np.allclose(out, 0.0)


class TestOuterProduct:
    def test_matches_numpy_outer(self, pe, rng):
        d = rng.uniform(-1, 1, 10)
        y = rng.uniform(-1, 1, 12)
        got = pe.outer_product(d, y)
        assert got.shape == (10, 12)
        assert np.max(np.abs(got - np.outer(d, y))) < 0.05

    def test_full_bank(self, pe, rng):
        d = rng.uniform(-1, 1, 16)
        y = rng.uniform(-1, 1, 16)
        got = pe.outer_product(d, y)
        assert np.max(np.abs(got - np.outer(d, y))) < 0.05

    def test_rejects_oversize(self, pe, rng):
        with pytest.raises(ShapeError):
            pe.outer_product(rng.uniform(-1, 1, 17), rng.uniform(-1, 1, 4))
        with pytest.raises(ShapeError):
            pe.outer_product(rng.uniform(-1, 1, 4), rng.uniform(-1, 1, 17))

    def test_rejects_matrices(self, pe):
        with pytest.raises(ShapeError):
            pe.outer_product(np.zeros((2, 2)), np.zeros(2))

    def test_costs_one_write_and_len_delta_symbols(self, pe, rng):
        d = rng.uniform(-1, 1, 6)
        y = rng.uniform(-1, 1, 4)
        pe.outer_product(d, y)
        assert pe.bank.stats.write_events == 1
        assert pe.bank.stats.symbols == 6


class TestBatchedModes:
    def test_forward_batch_matches_per_sample(self, rng):
        w = rng.uniform(-1, 1, (16, 16))
        xs = rng.uniform(-1, 1, (16, 5))
        batched_pe = ProcessingElement()
        batched_pe.program_weights(w)
        got = batched_pe.forward_batch(xs)
        single_pe = ProcessingElement()
        single_pe.program_weights(w)
        expected = np.stack(
            [single_pe.forward(xs[:, b], apply_activation=False) for b in range(5)],
            axis=1,
        )
        assert np.allclose(got, expected)
        assert np.array_equal(batched_pe.ldsu.batch_bits, got > 0)
        # Same streamed-symbol cost as five per-sample passes.
        assert batched_pe.bank.stats.symbols == single_pe.bank.stats.symbols

    def test_gradient_vector_batch_matches_per_sample(self, rng):
        n, B = 16, 4
        w = rng.uniform(-1, 1, (n, n))
        x_cols = rng.uniform(-1, 1, (n, B))
        w_next = rng.uniform(-1, 1, (n, n))
        deltas = rng.uniform(-1, 1, (n, B))

        pe_b = ProcessingElement()
        pe_b.program_weights(w)
        pe_b.forward_batch(x_cols)
        pe_b.program_weights(w_next.T)
        got = pe_b.gradient_vector_batch(deltas)

        for b in range(B):
            pe_s = ProcessingElement()
            pe_s.program_weights(w)
            pe_s.forward(x_cols[:, b], apply_activation=False)
            pe_s.program_weights(w_next.T)
            assert np.allclose(got[:, b], pe_s.gradient_vector(deltas[:, b]))

    def test_outer_product_batch_matches_per_sample(self, rng):
        B, d, y = 3, 6, 4
        deltas = rng.uniform(-1, 1, (B, d))
        ys = rng.uniform(-1, 1, (B, y))
        pe_b = ProcessingElement()
        got = pe_b.outer_product_batch(deltas, ys)
        assert got.shape == (B, d, y)
        for b in range(B):
            pe_s = ProcessingElement()
            assert np.allclose(got[b], pe_s.outer_product(deltas[b], ys[b]))

    def test_outer_product_batch_charges_per_sample_costs(self, rng):
        B, d, y = 5, 6, 4
        pe = ProcessingElement()
        pe.outer_product_batch(rng.uniform(-1, 1, (B, d)), rng.uniform(-1, 1, (B, y)))
        # B programming events of y*d cells and B*d symbols — exactly what
        # B sequential outer_product calls would charge.
        assert pe.bank.stats.write_events == B
        assert pe.bank.stats.cells_written == B * d * y
        assert pe.bank.stats.symbols == B * d
        assert pe.bank.stats.write_energy_j == pytest.approx(B * d * y * 660e-12)

    def test_outer_product_batch_validation(self, rng):
        pe = ProcessingElement()
        with pytest.raises(ShapeError):
            pe.outer_product_batch(np.zeros((2, 6)), np.zeros((3, 4)))
        with pytest.raises(ShapeError):
            pe.outer_product_batch(np.zeros((2, 17)), np.zeros((2, 4)))
        with pytest.raises(ShapeError):
            pe.outer_product_batch(np.full((2, 6), 2.0), np.zeros((2, 4)))


class TestTIAGains:
    def test_set_and_reset(self, pe):
        gains = np.linspace(0, 1, 16)
        pe.set_tia_gains(gains)
        assert np.allclose([t.gain for t in pe.tias], gains)
        pe.reset_tia_gains()
        assert all(t.gain == 1.0 for t in pe.tias)

    def test_rejects_wrong_length(self, pe):
        with pytest.raises(ShapeError):
            pe.set_tia_gains(np.ones(4))

    def test_write_energy_property(self, pe, rng):
        pe.program_weights(rng.uniform(-1, 1, (16, 16)))
        assert pe.write_energy_j == pytest.approx(256 * 660e-12)
