"""Tests for the GST phase-change material model."""

import numpy as np
import pytest

from repro.devices.gst import (
    DEFAULT_ENDURANCE_CYCLES,
    GSTCell,
    GSTMaterial,
    absorption_coefficient,
    effective_index,
    effective_permittivity,
    patch_transmission,
)
from repro.errors import EnduranceExceededError, ProgrammingError


class TestEffectiveMedium:
    def test_endpoints_match_pure_phases(self):
        n0 = effective_index(0.0)
        n1 = effective_index(1.0)
        assert complex(n0) == pytest.approx(4.6 + 0.18j, rel=1e-9)
        assert complex(n1) == pytest.approx(7.45 + 1.49j, rel=1e-9)

    def test_real_index_increases_with_crystallinity(self):
        c = np.linspace(0, 1, 50)
        n = np.real(effective_index(c))
        assert np.all(np.diff(n) > 0)

    def test_extinction_increases_with_crystallinity(self):
        c = np.linspace(0, 1, 50)
        k = np.imag(effective_index(c))
        assert np.all(np.diff(k) > 0)

    def test_vectorized_matches_scalar(self):
        c = np.array([0.0, 0.3, 0.7, 1.0])
        vec = effective_permittivity(c)
        for ci, vi in zip(c, vec):
            assert complex(effective_permittivity(float(ci))) == pytest.approx(complex(vi))

    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(ProgrammingError):
            effective_permittivity(-0.1)
        with pytest.raises(ProgrammingError):
            effective_permittivity(1.1)


class TestPatchTransmission:
    def test_bounded_in_unit_interval(self):
        c = np.linspace(0, 1, 100)
        t = patch_transmission(c, 0.5e-6)
        assert np.all(t > 0)
        assert np.all(t <= 1)

    def test_monotone_decreasing_in_crystallinity(self):
        c = np.linspace(0, 1, 100)
        t = patch_transmission(c, 0.5e-6)
        assert np.all(np.diff(t) < 0)

    def test_zero_length_patch_is_transparent(self):
        assert patch_transmission(1.0, 0.0) == pytest.approx(1.0)

    def test_longer_patch_absorbs_more(self):
        short = patch_transmission(0.8, 0.2e-6)
        long = patch_transmission(0.8, 0.8e-6)
        assert long < short

    def test_higher_confinement_absorbs_more(self):
        weak = patch_transmission(0.8, 0.5e-6, confinement=0.1)
        strong = patch_transmission(0.8, 0.5e-6, confinement=0.3)
        assert strong < weak

    def test_rejects_bad_confinement(self):
        with pytest.raises(ProgrammingError):
            patch_transmission(0.5, 1e-6, confinement=0.0)
        with pytest.raises(ProgrammingError):
            patch_transmission(0.5, 1e-6, confinement=1.5)

    def test_rejects_negative_length(self):
        with pytest.raises(ProgrammingError):
            patch_transmission(0.5, -1e-6)

    def test_absorption_coefficient_rejects_bad_wavelength(self):
        with pytest.raises(ProgrammingError):
            absorption_coefficient(0.5, wavelength_m=0.0)


class TestGSTMaterial:
    def test_default_has_8_bit_resolution(self):
        assert GSTMaterial().bit_resolution == 8

    def test_levels_match_paper_ref5(self):
        assert GSTMaterial().levels == 255

    def test_rejects_too_few_levels(self):
        with pytest.raises(ProgrammingError):
            GSTMaterial(levels=1)

    def test_rejects_nonpositive_endurance(self):
        with pytest.raises(ProgrammingError):
            GSTMaterial(endurance_cycles=0)

    def test_six_bit_variant(self):
        assert GSTMaterial(levels=63).bit_resolution == 6


class TestGSTCell:
    def test_fabricated_crystalline(self):
        assert GSTCell().crystalline_fraction == 1.0

    def test_program_fraction_sets_state_and_counts(self):
        cell = GSTCell()
        cell.program_fraction(0.25)
        assert cell.crystalline_fraction == 0.25
        assert cell.write_count == 1
        assert cell.energy_spent_j == pytest.approx(cell.write_energy_j)

    def test_program_level_roundtrip(self):
        cell = GSTCell()
        for level in (0, 100, 254):
            cell.program_level(level)
            assert cell.level == level

    def test_level_zero_is_crystalline(self):
        cell = GSTCell()
        cell.program_level(0)
        assert cell.crystalline_fraction == pytest.approx(1.0)

    def test_top_level_is_amorphous(self):
        cell = GSTCell()
        cell.program_level(254)
        assert cell.crystalline_fraction == pytest.approx(0.0)

    def test_program_level_rejects_out_of_range(self):
        cell = GSTCell()
        with pytest.raises(ProgrammingError):
            cell.program_level(-1)
        with pytest.raises(ProgrammingError):
            cell.program_level(255)

    def test_program_fraction_rejects_out_of_range(self):
        cell = GSTCell()
        with pytest.raises(ProgrammingError):
            cell.program_fraction(1.5)

    def test_amorphize_increases_transmission(self):
        cell = GSTCell()
        t_cryst = cell.transmission()
        cell.amorphize()
        assert cell.transmission() > t_cryst

    def test_crystallize_after_amorphize(self):
        cell = GSTCell()
        cell.amorphize()
        cell.crystallize()
        assert cell.crystalline_fraction == 1.0

    def test_read_counts_energy_not_endurance(self):
        cell = GSTCell()
        writes_before = cell.write_count
        t = cell.read()
        assert cell.read_count == 1
        assert cell.write_count == writes_before
        assert 0 < t <= 1
        assert cell.energy_spent_j == pytest.approx(cell.read_energy_j)

    def test_endurance_enforced(self):
        cell = GSTCell(material=GSTMaterial(endurance_cycles=3))
        for _ in range(3):
            cell.amorphize()
        with pytest.raises(EnduranceExceededError):
            cell.amorphize()

    def test_remaining_endurance(self):
        cell = GSTCell(material=GSTMaterial(endurance_cycles=10))
        cell.amorphize()
        cell.amorphize()
        assert cell.remaining_endurance == 8

    def test_default_endurance_is_trillion_cycles(self):
        assert DEFAULT_ENDURANCE_CYCLES == int(1e12)

    def test_write_energy_matches_paper(self):
        # Sec. III-B: >= 660 pJ write, ~20 pJ read.
        cell = GSTCell()
        assert cell.write_energy_j == pytest.approx(660e-12)
        assert cell.read_energy_j == pytest.approx(20e-12)
