"""CLI tests for the observability surface: ``repro trace``,
``--metrics-out`` on train/faults, and the ``-v``/``--debug`` flags."""

import json

import pytest

from repro import telemetry
from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    """Telemetry and CLI logging state never leaks between tests."""
    telemetry.disable()
    telemetry.reset_cli_logging()
    yield
    telemetry.disable()
    telemetry.reset_cli_logging()


@pytest.fixture
def run(capsys):
    """Invoke the CLI in-process; returns (exit_code, stdout)."""

    def _run(*argv):
        code = main(list(argv))
        out = capsys.readouterr().out
        return code, out

    return _run


class TestTraceCommand:
    def test_smoke_passes_and_artifacts_are_valid(self, run, tmp_path):
        out = tmp_path / "run.trace.json"
        code, text = run("trace", "--smoke", "--out", str(out))
        assert code == 0
        assert "FAIL" not in text
        for label in (
            "chrome trace schema valid",
            "span coverage >= 95%",
            "repair-tier + rollback counters exposed",
            "rollback exercised",
            "training completed",
        ):
            assert f"OK   {label}" in text

        # The trace artifact is independently schema-valid...
        doc = json.loads(out.read_text())
        assert telemetry.validate_chrome_trace(doc) == []
        names = {ev["name"] for ev in doc["traceEvents"]}
        for expected in (
            "trace_workload", "deploy_and_repair", "training",
            "inference", "modeling", "forward_batch", "train_step",
        ):
            assert expected in names

        # ...the metrics dump parses and carries the gated counters...
        samples = telemetry.parse_prometheus_text(
            (tmp_path / "run.metrics.prom").read_text()
        )
        assert samples["repro_rollbacks_total"] >= 1
        assert 'repro_repairs_total{tier="retry"}' in samples

        # ...and the event log is line-parseable JSONL with a rollback.
        lines = (tmp_path / "run.events.jsonl").read_text().splitlines()
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "rollback" in kinds
        assert "checkpoint" in kinds

    def test_no_active_session_leaks_after_trace(self, run, tmp_path):
        run("trace", "--smoke", "--out", str(tmp_path / "t.trace.json"))
        assert not telemetry.enabled()


class TestMetricsOutFlag:
    def test_train_metrics_out(self, run, tmp_path):
        dump = tmp_path / "train.prom"
        code, text = run(
            "train", "--steps", "6", "--checkpoint-every", "3",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--metrics-out", str(dump),
        )
        assert code == 0
        assert f"metrics written to {dump}" in text
        samples = telemetry.parse_prometheus_text(dump.read_text())
        assert samples["repro_train_steps_total"] == 6
        assert samples["repro_checkpoints_written_total"] >= 1

    def test_faults_smoke_metrics_out(self, run, tmp_path):
        dump = tmp_path / "faults.prom"
        code, _ = run("faults", "--smoke", "--metrics-out", str(dump))
        assert code == 0
        samples = telemetry.parse_prometheus_text(dump.read_text())
        assert samples["repro_campaign_cells_total"] >= 1
        assert samples["repro_campaign_progress_ratio"] == 1.0


class TestVerbosityFlags:
    def test_verbose_enables_info_logging(self, capsys):
        code = main(["-v", "models"])
        assert code == 0
        import logging

        assert logging.getLogger("repro").level == logging.INFO

    def test_debug_flag_forces_debug(self):
        import logging

        main(["--debug", "models"])
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_default_is_warning(self):
        import logging

        main(["models"])
        assert logging.getLogger("repro").level == logging.WARNING


class TestParserWiring:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.out is None
        assert args.dims == [6, 8, 3]
        assert args.smoke is False

    def test_verbose_counts(self):
        args = build_parser().parse_args(["-vv", "trace"])
        assert args.verbose == 2

    def test_metrics_out_accepted_on_train_and_faults(self):
        parser = build_parser()
        assert parser.parse_args(
            ["train", "--metrics-out", "m.prom"]
        ).metrics_out == "m.prom"
        assert parser.parse_args(
            ["faults", "--smoke", "--metrics-out", "m.prom"]
        ).metrics_out == "m.prom"
