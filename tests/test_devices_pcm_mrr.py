"""Tests for the PCM-MRR weight cell and its calibration."""

import numpy as np
import pytest

from repro.devices.gst import GSTMaterial
from repro.devices.mrr import AddDropMRR
from repro.devices.pcm_mrr import PCMMRRWeight, build_calibration
from repro.errors import DeviceError, ProgrammingError


class TestBuildCalibration:
    def test_differential_strictly_decreasing(self, calibration):
        assert np.all(np.diff(calibration.differentials) < 0)

    def test_range_straddles_zero(self, calibration):
        assert calibration.differentials[0] > 0
        assert calibration.differentials[-1] < 0

    def test_d_sym_is_symmetric_range(self, calibration):
        assert calibration.d_sym == pytest.approx(
            min(calibration.differentials[0], -calibration.differentials[-1])
        )

    def test_255_levels_by_default(self, calibration):
        assert calibration.levels == 255

    def test_rejects_tiny_grid(self):
        with pytest.raises(DeviceError):
            build_calibration(grid_points=4)

    def test_non_calibratable_geometry_rejected(self):
        # A patch so long that even amorphous GST kills the drop port.
        with pytest.raises(DeviceError):
            build_calibration(patch_length_m=5e-6)


class TestWeightMapping:
    def test_weight_fraction_roundtrip(self, calibration):
        w = np.linspace(-1, 1, 41)
        c = calibration.weight_to_fraction(w)
        back = calibration.fraction_to_weight(c)
        assert np.allclose(back, w, atol=5e-3)

    def test_fraction_monotone_decreasing_in_weight(self, calibration):
        w = np.linspace(-1, 1, 101)
        c = calibration.weight_to_fraction(w)
        assert np.all(np.diff(c) < 0)

    def test_zero_weight_maps_to_zero_differential(self, calibration):
        assert float(calibration.weight_to_differential(0.0)) == pytest.approx(0.0)

    def test_extreme_weights_hit_symmetric_range(self, calibration):
        assert float(calibration.weight_to_differential(1.0)) == pytest.approx(
            calibration.d_sym
        )
        assert float(calibration.weight_to_differential(-1.0)) == pytest.approx(
            -calibration.d_sym
        )

    def test_rejects_overrange_weight(self, calibration):
        with pytest.raises(ProgrammingError):
            calibration.weight_to_differential(1.5)


class TestLevelQuantization:
    def test_endpoints(self, calibration):
        assert calibration.weights_to_levels(-1.0) == 0
        assert calibration.weights_to_levels(1.0) == calibration.levels - 1

    def test_roundtrip_error_within_half_step(self, calibration):
        w = np.linspace(-1, 1, 1001)
        back = calibration.levels_to_weights(calibration.weights_to_levels(w))
        assert np.max(np.abs(back - w)) <= calibration.weight_step / 2 + 1e-12

    def test_weight_step_for_8_bit(self, calibration):
        assert calibration.weight_step == pytest.approx(2 / 254)

    def test_levels_are_integers(self, calibration):
        levels = calibration.weights_to_levels(np.array([-0.5, 0.0, 0.5]))
        assert levels.dtype == np.int64

    def test_rejects_overrange(self, calibration):
        with pytest.raises(ProgrammingError):
            calibration.weights_to_levels(np.array([2.0]))


class TestPCMMRRWeight:
    def test_program_and_read_weight(self):
        device = PCMMRRWeight()
        for target in (-0.8, -0.25, 0.0, 0.4, 0.95):
            device.program(target)
            assert device.weight == pytest.approx(target, abs=2 * device.calibration.weight_step)

    def test_apply_multiplies(self):
        device = PCMMRRWeight()
        device.program(0.5)
        assert device.apply(0.6) == pytest.approx(0.3, abs=0.01)

    def test_programming_costs_energy(self):
        device = PCMMRRWeight()
        device.program(0.3)
        device.program(-0.3)
        assert device.programming_energy_j == pytest.approx(2 * device.gst.write_energy_j)

    def test_physical_differential_tracks_calibration(self):
        """The full ring formula at the programmed GST state must agree
        with the calibration curve the bank math uses."""
        device = PCMMRRWeight()
        for target in (-0.6, 0.0, 0.7):
            device.program(target)
            d_phys = device.differential_transmission()
            w_phys = float(device.calibration.differential_to_weight(d_phys))
            assert w_phys == pytest.approx(target, abs=0.02)

    def test_custom_ring_gets_own_calibration(self):
        ring = AddDropMRR(input_coupling=0.9, drop_coupling=0.9)
        device = PCMMRRWeight(ring=ring)
        assert device.calibration.d_sym > 0

    def test_material_levels_respected(self):
        device = PCMMRRWeight()
        assert device.calibration.levels == GSTMaterial().levels
