"""Tests for tuning technologies (Table I) and the noise model."""

import numpy as np
import pytest

from repro.devices.noise import NoiseModel
from repro.devices.tuning import (
    ElectricTuning,
    GSTTuning,
    ThermalTuning,
    TuningMethod,
    tuning_comparison_table,
)
from repro.errors import ConfigError


class TestTableIValues:
    def test_thermal(self):
        t = ThermalTuning()
        assert t.write_energy_j == pytest.approx(1.02e-9)
        assert t.write_time_s == pytest.approx(0.6e-6)
        assert t.hold_power_w == pytest.approx(1.7e-3)
        assert t.volatile

    def test_electric(self):
        e = ElectricTuning()
        assert e.write_time_s == pytest.approx(500e-9)
        assert e.wavelength_shift(1.0) == pytest.approx(0.18e-12)

    def test_gst(self):
        g = GSTTuning()
        assert g.write_energy_j == pytest.approx(660e-12)
        assert g.write_time_s == pytest.approx(300e-9)
        assert g.hold_power_w == 0.0
        assert not g.volatile
        assert g.retention_years == pytest.approx(10.0)

    def test_gst_twice_as_fast_as_thermal(self):
        assert ThermalTuning().write_time_s / GSTTuning().write_time_s == pytest.approx(2.0)


class TestResolutionAndTraining:
    def test_thermal_cannot_train(self):
        assert ThermalTuning().bit_resolution == 6
        assert not ThermalTuning().supports_training()

    def test_gst_can_train(self):
        assert GSTTuning().bit_resolution == 8
        assert GSTTuning().supports_training()

    def test_levels(self):
        assert GSTTuning().levels == 255
        assert ThermalTuning().levels == 63


class TestEnergyAccounting:
    def test_write_energy_scales_with_cells(self):
        g = GSTTuning()
        assert g.write_energy(256) == pytest.approx(256 * 660e-12)

    def test_write_energy_rejects_negative(self):
        with pytest.raises(ValueError):
            GSTTuning().write_energy(-1)

    def test_gst_hold_free(self):
        assert GSTTuning().hold_energy(256, 1.0) == 0.0

    def test_thermal_hold_costly(self):
        # 256 rings held 1 ms: 256 * 1.7 mW * 1e-3 s.
        assert ThermalTuning().hold_energy(256, 1e-3) == pytest.approx(256 * 1.7e-6)

    def test_hold_energy_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            ThermalTuning().hold_energy(10, -1.0)

    def test_read_energy(self):
        assert GSTTuning().read_energy(5) == pytest.approx(100e-12)


class TestComparisonTable:
    def test_three_rows(self):
        rows = tuning_comparison_table()
        assert [r["method"] for r in rows] == ["thermal", "electric", "gst"]

    def test_only_gst_supports_training(self):
        rows = {r["method"]: r for r in tuning_comparison_table()}
        assert rows["gst"]["supports_training"]
        assert not rows["thermal"]["supports_training"]

    def test_enum_values(self):
        assert TuningMethod.GST.value == "gst"


class TestNoiseModel:
    def test_ideal_is_pass_through(self):
        nm = NoiseModel.ideal()
        sig = np.linspace(-1, 1, 16)
        assert np.array_equal(nm.apply_detection_noise(sig), sig)

    def test_ideal_returns_copy(self):
        nm = NoiseModel.ideal()
        sig = np.ones(4)
        out = nm.apply_detection_noise(sig)
        out[:] = 0
        assert np.all(sig == 1)

    def test_realistic_perturbs(self):
        nm = NoiseModel.realistic(seed=1)
        sig = np.ones(1000)
        out = nm.apply_detection_noise(sig)
        assert not np.array_equal(out, sig)
        assert np.std(out - sig) > 0

    def test_seeded_repeatability(self):
        a = NoiseModel.realistic(seed=5).apply_detection_noise(np.ones(32))
        b = NoiseModel.realistic(seed=5).apply_detection_noise(np.ones(32))
        assert np.array_equal(a, b)

    def test_reseed(self):
        nm = NoiseModel.realistic(seed=5)
        a = nm.apply_detection_noise(np.ones(32))
        nm.reseed(5)
        b = nm.apply_detection_noise(np.ones(32))
        assert np.array_equal(a, b)

    def test_noise_grows_with_signal(self):
        nm = NoiseModel.realistic(seed=2)
        small = np.std(nm.apply_detection_noise(np.full(20000, 0.01)) - 0.01)
        nm.reseed(2)
        large = np.std(nm.apply_detection_noise(np.full(20000, 1.0)) - 1.0)
        assert large > small

    def test_programming_noise_disabled_cases(self):
        nm = NoiseModel.ideal()
        levels = np.arange(10.0)
        assert np.array_equal(nm.apply_programming_noise(levels, 1.0), levels)
        nm2 = NoiseModel.realistic()
        assert np.array_equal(nm2.apply_programming_noise(levels, 0.0), levels)

    def test_programming_noise_scale(self):
        nm = NoiseModel.realistic(seed=3)
        levels = np.zeros(20000)
        out = nm.apply_programming_noise(levels, 2.0)
        assert np.std(out) == pytest.approx(2.0, rel=0.05)

    def test_rejects_negative_coefficients(self):
        with pytest.raises(ConfigError):
            NoiseModel(shot_noise_coeff=-0.1)
