"""Tests for the photonic and electronic baseline models."""

import numpy as np
import pytest

from repro.baselines import (
    POWER_BUDGET_W,
    crosslight_arch,
    deap_cnn_arch,
    electronic_baselines,
    photonic_baselines,
    pixel_arch,
)
from repro.baselines.base import baseline_sizing_power, pes_for_budget
from repro.baselines.electronic import (
    XAVIER_TRAINING_UTILIZATION,
    agx_xavier,
    agx_xavier_training,
    bearkey_tb96,
    google_coral,
)
from repro.dataflow.cost_model import PhotonicCostModel
from repro.nn import build_model


class TestSizingMethodology:
    def test_budget_is_30w(self):
        assert POWER_BUDGET_W == 30.0

    def test_sizing_power_rejects_negative_extras(self):
        with pytest.raises(ValueError):
            baseline_sizing_power(-1.0)

    def test_pes_for_budget(self):
        assert pes_for_budget(0.676, 30.0) == 44

    def test_pes_for_budget_rejects_oversized_pe(self):
        with pytest.raises(ValueError):
            pes_for_budget(40.0, 30.0)

    def test_all_archs_respect_budget(self):
        for arch in photonic_baselines():
            assert arch.n_pes * arch.sizing_power_pe_w <= POWER_BUDGET_W

    def test_trident_has_most_pes(self):
        """Paper Sec. V-A: the GST tuning method lets Trident scale to more
        PEs than the other photonic accelerators at 30 W."""
        archs = {a.name: a for a in photonic_baselines()}
        trident = archs.pop("trident")
        for other in archs.values():
            assert trident.n_pes >= other.n_pes

    def test_pe_count_ordering(self):
        archs = {a.name: a.n_pes for a in photonic_baselines()}
        assert archs["trident"] > archs["crosslight"] > archs["pixel"]


class TestDEAPCNN:
    def test_thermal_tuning_parameters(self):
        a = deap_cnn_arch()
        assert a.write_energy_per_cell_j == pytest.approx(1.02e-9)
        assert a.write_time_s == pytest.approx(0.6e-6)
        assert a.hold_power_per_cell_w == pytest.approx(1.7e-3)

    def test_six_bit_resolution(self):
        assert deap_cnn_arch().weight_bits == 6

    def test_digital_activation(self):
        a = deap_cnn_arch()
        assert a.digital_activation
        assert a.adc_energy_per_sample_j > 0

    def test_slower_symbol_rate_than_trident(self):
        archs = {a.name: a for a in photonic_baselines()}
        assert archs["deap-cnn"].symbol_rate_hz < archs["trident"].symbol_rate_hz


class TestCrossLight:
    def test_hybrid_tuning_faster_than_thermal(self):
        assert crosslight_arch().write_time_s < deap_cnn_arch().write_time_s

    def test_vcsel_burden_reduces_pe_count(self):
        assert crosslight_arch().n_pes < deap_cnn_arch().n_pes

    def test_seven_bit_resolution(self):
        assert crosslight_arch().weight_bits == 7


class TestPIXEL:
    def test_mzm_extra_symbol_energy(self):
        assert pixel_arch().extra_symbol_energy_j > 0

    def test_fewest_pes(self):
        counts = {a.name: a.n_pes for a in photonic_baselines()}
        assert counts["pixel"] == min(counts.values())

    def test_thermal_write_parameters(self):
        a = pixel_arch()
        assert a.write_energy_per_cell_j == pytest.approx(1.02e-9)


class TestPaperShapes:
    """The headline comparative results (who wins, by roughly how much)."""

    @pytest.fixture(scope="class")
    def costs(self):
        nets = {m: build_model(m) for m in
                ("googlenet", "mobilenet_v2", "vgg16", "alexnet", "resnet50")}
        out = {}
        for arch in photonic_baselines():
            cm = PhotonicCostModel(arch, batch=128)
            out[arch.name] = {m: cm.model_cost(n) for m, n in nets.items()}
        return out

    def test_trident_wins_energy_everywhere(self, costs):
        for name, per_model in costs.items():
            if name == "trident":
                continue
            for m in per_model:
                assert per_model[m].energy_j > costs["trident"][m].energy_j, (name, m)

    def test_trident_wins_throughput_everywhere(self, costs):
        for name, per_model in costs.items():
            if name == "trident":
                continue
            for m in per_model:
                assert (
                    per_model[m].inferences_per_second
                    < costs["trident"][m].inferences_per_second
                ), (name, m)

    def test_fig4_average_energy_ratios(self, costs):
        models = list(costs["trident"])
        for name, target in (("deap-cnn", 16.4), ("crosslight", 43.5), ("pixel", 43.4)):
            ratio = np.mean(
                [costs[name][m].energy_j / costs["trident"][m].energy_j for m in models]
            )
            assert (ratio - 1) * 100 == pytest.approx(target, abs=1.5)

    def test_fig6_average_throughput_advantages(self, costs):
        models = list(costs["trident"])
        for name, target in (("deap-cnn", 27.9), ("crosslight", 150.2), ("pixel", 143.6)):
            adv = np.mean(
                [
                    costs["trident"][m].inferences_per_second
                    / costs[name][m].inferences_per_second
                    for m in models
                ]
            )
            assert (adv - 1) * 100 == pytest.approx(target, abs=3.0)


class TestElectronic:
    def test_table4_specs(self):
        specs = {a.name: a for a in electronic_baselines()}
        assert specs["agx-xavier"].peak_tops == 32.0
        assert specs["agx-xavier"].power_w == 30.0
        assert specs["tb96-ai"].peak_tops == 3.0
        assert specs["tb96-ai"].power_w == 20.0
        assert specs["google-coral"].peak_tops == 4.0
        assert specs["google-coral"].power_w == 15.0

    def test_only_xavier_trains(self):
        trainers = [a.name for a in electronic_baselines() if a.can_train]
        assert trainers == ["agx-xavier"]

    def test_tops_per_watt_ordering_matches_table4(self):
        specs = {a.name: a.tops_per_watt for a in electronic_baselines()}
        assert specs["agx-xavier"] > specs["google-coral"] > specs["tb96-ai"]

    def test_coral_resnet_fps_matches_published_scale(self):
        # Published Edge TPU dev-board ResNet-50 throughput is ~50 fps.
        cost = google_coral().model_cost(build_model("resnet50"), batch=32)
        assert 30 < cost.inferences_per_second < 80

    def test_xavier_training_override(self):
        assert set(XAVIER_TRAINING_UTILIZATION) == {
            "mobilenet_v2", "googlenet", "resnet50", "vgg16",
        }
        googlenet = agx_xavier_training("googlenet")
        assert googlenet.compute_utilization == pytest.approx(0.2610)
        fallback = agx_xavier_training("alexnet")
        assert fallback.compute_utilization == agx_xavier().compute_utilization

    def test_googlenet_utilizes_xavier_best(self):
        # Dense small-map convolutions sustain the highest fraction of peak.
        best = max(XAVIER_TRAINING_UTILIZATION, key=XAVIER_TRAINING_UTILIZATION.get)
        assert best == "googlenet"

    def test_tb96_slower_than_xavier(self):
        net = build_model("resnet50")
        assert (
            bearkey_tb96().model_cost(net).time_s > agx_xavier().model_cost(net).time_s
        )
