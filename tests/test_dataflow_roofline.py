"""Tests for the electronic roofline model."""

import pytest

from repro.dataflow.roofline import ElectronicAccelerator
from repro.errors import ConfigError
from repro.nn import build_model


def make_acc(**kwargs):
    defaults = dict(
        name="test", peak_tops=10.0, power_w=10.0,
        dram_bandwidth_bytes_per_s=50e9, compute_utilization=0.5, can_train=True,
    )
    defaults.update(kwargs)
    return ElectronicAccelerator(**defaults)


class TestConstruction:
    def test_tops_per_watt(self):
        assert make_acc().tops_per_watt == pytest.approx(1.0)

    def test_sustained_rate(self):
        assert make_acc().sustained_ops_per_s == pytest.approx(5e12)

    def test_validation(self):
        with pytest.raises(ConfigError):
            make_acc(peak_tops=0.0)
        with pytest.raises(ConfigError):
            make_acc(compute_utilization=0.0)
        with pytest.raises(ConfigError):
            make_acc(compute_utilization=1.5)
        with pytest.raises(ConfigError):
            make_acc(dram_bandwidth_bytes_per_s=0.0)
        with pytest.raises(ConfigError):
            make_acc(training_expansion=0.5)


class TestModelCost:
    def test_compute_bound_for_dense_model(self):
        acc = make_acc(dram_bandwidth_bytes_per_s=1e12)  # huge bandwidth
        cost = acc.model_cost(build_model("vgg16"), batch=32)
        total_ops = 2 * cost.total_macs
        assert cost.time_s == pytest.approx(total_ops / acc.sustained_ops_per_s, rel=0.01)

    def test_bandwidth_bound_when_starved(self):
        fast = make_acc(dram_bandwidth_bytes_per_s=1e12)
        slow = make_acc(dram_bandwidth_bytes_per_s=1e9)
        net = build_model("mobilenet_v2")
        assert slow.model_cost(net).time_s > fast.model_cost(net).time_s

    def test_depthwise_model_more_bandwidth_sensitive(self):
        """MobileNet slows down more than VGG when bandwidth halves —
        the behaviour the paper's Table V pattern relies on."""
        fast = make_acc(dram_bandwidth_bytes_per_s=20e9)
        slow = make_acc(dram_bandwidth_bytes_per_s=2e9)
        mobil = build_model("mobilenet_v2")
        vgg = build_model("vgg16")
        mobil_slowdown = slow.model_cost(mobil).time_s / fast.model_cost(mobil).time_s
        vgg_slowdown = slow.model_cost(vgg).time_s / fast.model_cost(vgg).time_s
        assert mobil_slowdown > vgg_slowdown

    def test_larger_batch_amortizes_weight_traffic(self):
        acc = make_acc(dram_bandwidth_bytes_per_s=5e9)
        net = build_model("alexnet")  # 61M weights: traffic-heavy at batch 1
        t1 = acc.model_cost(net, batch=1).time_s
        t32 = acc.model_cost(net, batch=32).time_s
        assert t32 < t1

    def test_energy_positive_and_scales_with_ops(self):
        acc = make_acc()
        small = acc.model_cost(build_model("mobilenet_v2"))
        big = acc.model_cost(build_model("vgg16"))
        assert 0 < small.energy_j < big.energy_j

    def test_explicit_energy_per_op(self):
        acc = make_acc(energy_per_op_j=1e-12)
        cost = acc.model_cost(build_model("mobilenet_v2"))
        assert cost.energy_j == pytest.approx(2 * cost.total_macs * 1e-12)

    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigError):
            make_acc().model_cost(build_model("alexnet"), batch=0)


class TestTraining:
    def test_training_time_is_expanded_inference(self):
        acc = make_acc(training_expansion=3.0)
        net = build_model("googlenet")
        inference = acc.model_cost(net, batch=32).time_s
        assert acc.training_time_s(net, 1000, batch=32) == pytest.approx(
            1000 * inference * 3.0
        )

    def test_inference_only_device_cannot_train(self):
        acc = make_acc(can_train=False)
        with pytest.raises(ConfigError):
            acc.training_time_s(build_model("googlenet"), 100)

    def test_rejects_bad_sample_count(self):
        with pytest.raises(ConfigError):
            make_acc().training_time_s(build_model("googlenet"), 0)
