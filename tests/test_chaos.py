"""Tests for the deterministic chaos subsystem and soak harness.

Covers the plan/session/injector/audit layers, the two regression
satellites (corrupt-checkpoint skip telemetry; monotonic breaker probe
scheduling under forced trips), the clock-jitter hook, and the soak
cell/matrix machinery including the sabotage self-audit.
"""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.chaos import (
    ChaosPlan,
    ChaosProfile,
    Injection,
    compile_plan,
    flip_file_bit,
    make_server_action,
    tear_jsonl_tail,
)
from repro.chaos.session import (
    ChaosSession,
    corrupt_output,
    crash_check,
    enabled,
    session as chaos_scope,
)
from repro.chaos.soak import (
    SoakConfig,
    _run_serve,
    _serve_digest,
    _serve_exec,
    render_matrix,
    run_cell,
    run_self_audit,
    run_soak,
    validate_matrix,
)
from repro.errors import ChaosError, CheckpointError, ReproError
from repro.runtime.checkpoint import CheckpointStore, save_checkpoint
from repro.runtime.clock import VirtualClock
from repro.serving.breaker import BreakerState, CircuitBreaker


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------
class TestChaosPlan:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ChaosError):
            Injection(1.0, "meteor_strike")

    def test_rejects_negative_time(self):
        with pytest.raises(ChaosError):
            Injection(-1e-9, "worker_crash")

    def test_crash_phase_validated(self):
        with pytest.raises(ChaosError):
            Injection(0.0, "worker_crash", params={"phase": "mid_flight"})

    def test_injections_sorted_by_time(self):
        plan = ChaosPlan(
            seed=1,
            injections=(
                Injection(2.0, "breaker_storm"),
                Injection(1.0, "stuck_burst", target=0),
            ),
        )
        assert [inj.t_s for inj in plan.injections] == [1.0, 2.0]

    def test_round_trip_dict_and_json(self, tmp_path):
        plan = compile_plan(
            ChaosProfile(window_s=1e-4, workers=(0, 1), stages=(0,)), seed=9
        )
        assert ChaosPlan.from_dict(plan.as_dict()) == plan
        path = plan.to_json(tmp_path / "plan.json")
        assert ChaosPlan.from_json(path) == plan
        # The on-disk form is plain JSON, editable by hand.
        doc = json.loads(path.read_text())
        assert doc["seed"] == 9

    def test_compile_is_deterministic(self):
        profile = ChaosProfile(window_s=1e-3, workers=(0, 1, 2))
        assert compile_plan(profile, 5) == compile_plan(profile, 5)
        assert compile_plan(profile, 5) != compile_plan(profile, 6)

    def test_compile_honours_profile_counts(self):
        profile = ChaosProfile(
            window_s=1.0, workers=(0,), crashes=3, corruptions=2,
            stuck_bursts=1, drift_bursts=1, breaker_storms=2,
        )
        counts = compile_plan(profile, 0).counts()
        assert counts["worker_crash"] == 3
        assert counts["corrupt_output"] == 2
        assert counts["stuck_burst"] == 1
        assert counts["drift_burst"] == 1
        assert counts["breaker_storm"] == 2

    def test_per_injection_rngs_are_independent(self):
        plan = ChaosPlan(
            seed=3,
            injections=(
                Injection(0.0, "stuck_burst", 0),
                Injection(1.0, "breaker_storm"),
            ),
        )
        a = plan.rng_for(0).random(4)
        b = plan.rng_for(0).random(4)
        c = plan.rng_for(1).random(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


# ---------------------------------------------------------------------------
# Session hook points
# ---------------------------------------------------------------------------
class TestChaosSession:
    def make(self, *injections, seed=0, jitter=0.0):
        return ChaosSession(
            ChaosPlan(seed=seed, injections=injections, clock_jitter_s=jitter)
        )

    def test_crash_consumed_exactly_once(self):
        s = self.make(
            Injection(1.0, "worker_crash", 0, {"phase": "dispatch"})
        )
        assert s.crash_check(0, "dispatch", 0.5) is None  # not due yet
        assert s.crash_check(1, "dispatch", 2.0) is None  # wrong worker
        assert s.crash_check(0, "drain", 2.0) is None     # wrong phase
        reason = s.crash_check(0, "dispatch", 2.0)
        assert reason is not None
        assert s.crash_check(0, "dispatch", 3.0) is None  # consumed
        assert s.applied_counts() == {"worker_crash": 1}

    def test_corrupt_output_poisons_copy_not_original(self):
        s = self.make(Injection(0.0, "corrupt_output", 0))
        outputs = np.ones((4, 3))
        poisoned = s.corrupt_output(0, 1.0, outputs)
        assert np.all(np.isfinite(outputs))
        assert np.isnan(poisoned).sum() >= 1
        # Consumed: the next batch passes through untouched.
        again = s.corrupt_output(0, 2.0, outputs)
        assert np.array_equal(again, outputs)

    def test_corrupt_output_defaults_to_nan_poison(self):
        # The historical default: pre-mode plans must replay unchanged.
        s = self.make(Injection(0.0, "corrupt_output", 0))
        poisoned = s.corrupt_output(0, 1.0, np.ones((4, 3)))
        assert s.applied[0]["mode"] == "nan"
        assert np.isnan(poisoned).sum() >= 1

    @pytest.mark.parametrize("mode", ["bias", "scale", "sign_flip"])
    def test_finite_modes_corrupt_but_pass_finite_gate(self, mode):
        s = self.make(
            Injection(0.0, "silent_corrupt", 0, {"mode": mode})
        )
        outputs = np.random.default_rng(4).uniform(0.5, 1.0, (6, 5))
        poisoned = s.corrupt_output(0, 1.0, outputs)
        # Silent: finite everywhere (sails through the NaN gate), yet
        # wrong — only the checksum attestation can see it.
        assert np.all(np.isfinite(poisoned))
        assert not np.array_equal(poisoned, outputs)
        assert np.all(np.isfinite(outputs))  # original untouched
        assert s.applied[0]["mode"] == mode
        assert s.applied[0]["poisoned"] == max(1, outputs.size // 8)

    def test_fortran_ordered_outputs_still_get_poisoned(self):
        # forward_batch hands back transpose views; a layout-preserving
        # copy would make reshape(-1) a copy and the poison a no-op.
        s = self.make(Injection(0.0, "silent_corrupt", 0, {"mode": "bias"}))
        outputs = np.asfortranarray(
            np.random.default_rng(5).uniform(0.5, 1.0, (6, 5))
        )
        poisoned = s.corrupt_output(0, 1.0, outputs)
        assert not np.array_equal(poisoned, outputs)

    def test_silent_corrupt_mode_validation(self):
        with pytest.raises(ChaosError, match="finite"):
            Injection(0.0, "silent_corrupt", 0, {"mode": "nan"})
        with pytest.raises(ChaosError, match="mode"):
            Injection(0.0, "silent_corrupt", 0, {"mode": "garbage"})
        with pytest.raises(ChaosError, match="magnitude"):
            Injection(0.0, "silent_corrupt", 0, {"magnitude": 0.0})

    def test_double_apply_raises(self):
        s = self.make(Injection(0.0, "breaker_storm"))
        s.mark_applied(0, at_s=0.0)
        with pytest.raises(ChaosError):
            s.mark_applied(0, at_s=1.0)

    def test_jitter_deterministic_and_bounded(self):
        a = self.make(jitter=1e-8)
        b = self.make(jitter=1e-8)
        xs = [a.jitter(float(i)) for i in range(16)]
        ys = [b.jitter(float(i)) for i in range(16)]
        assert xs == ys
        assert all(0.0 <= x <= 1e-8 for x in xs)

    def test_disabled_hooks_are_no_ops(self):
        assert not enabled()
        outputs = np.ones((2, 2))
        assert crash_check(0, "dispatch", 1e9) is None
        assert corrupt_output(0, 1e9, outputs) is outputs

    def test_scope_enables_and_disables(self):
        plan = ChaosPlan(seed=0)
        with chaos_scope(plan) as s:
            assert enabled()
            assert s.plan is plan
        assert not enabled()


# ---------------------------------------------------------------------------
# File injectors
# ---------------------------------------------------------------------------
class TestFileInjectors:
    def test_bit_flip_defeats_checkpoint_hash(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(path, {"step": 3, "w": np.ones(4)}, kind="training")
        flip_file_bit(path, np.random.default_rng(0))
        from repro.runtime.checkpoint import load_checkpoint

        with pytest.raises((CheckpointError, ReproError)):
            load_checkpoint(path, expect_kind="training")

    def test_tear_leaves_partial_final_line(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        lines = [json.dumps({"row": i}) for i in range(3)]
        path.write_text("\n".join(lines) + "\n")
        torn = tear_jsonl_tail(path, np.random.default_rng(1))
        assert torn > 0
        kept = path.read_text().splitlines()
        assert kept[0] == lines[0] and kept[1] == lines[1]
        assert kept[2] != lines[2]  # torn mid-record

    def test_tear_refuses_single_line_file(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(json.dumps({"header": True}) + "\n")
        with pytest.raises(ChaosError):
            tear_jsonl_tail(path, np.random.default_rng(0))

    def test_sabotage_action_raises(self):
        session = ChaosSession(
            ChaosPlan(seed=0, injections=(Injection(0.0, "sabotage"),))
        )
        action = make_server_action(session, 0, session.plan.injections[0])

        class FakeServer:
            clock = VirtualClock()

        with pytest.raises(ChaosError):
            action(FakeServer())


# ---------------------------------------------------------------------------
# Clock jitter hook
# ---------------------------------------------------------------------------
class TestClockJitter:
    def test_jitter_delays_but_never_reorders(self):
        from repro.errors import ServingError

        clock = VirtualClock(jitter_fn=lambda t: 1e-9)
        clock.advance_to(1e-6)
        assert clock.now() == pytest.approx(1e-6 + 1e-9)
        before = clock.now()
        clock.advance_to(before)  # zero-width jump: no jitter applied
        assert clock.now() == before
        with pytest.raises(ServingError):
            clock.advance_to(0.0)  # rewinding stays forbidden

    def test_negative_jitter_clamped(self):
        clock = VirtualClock(jitter_fn=lambda t: -5.0)
        clock.advance_to(1.0)
        assert clock.now() == 1.0

    def test_set_jitter_after_construction(self):
        clock = VirtualClock()
        clock.advance_to(1.0)
        clock.set_jitter(lambda t: 0.5)
        clock.advance_to(2.0)
        assert clock.now() == 2.5


# ---------------------------------------------------------------------------
# Satellite: monotonic probe scheduling under forced trips
# ---------------------------------------------------------------------------
class TestBreakerMonotonicProbe:
    def test_forced_trip_never_moves_probe_backward(self):
        breaker = CircuitBreaker(0, failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure(10.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.next_probe_s() == 15.0
        assert breaker.allow(15.0)  # OPEN -> HALF_OPEN probe
        assert breaker.state is BreakerState.HALF_OPEN
        # A chaos storm re-trips with a stale timestamp: the new probe
        # instant must not precede the one already scheduled.
        breaker.trip(8.0, "chaos_storm")
        assert breaker.state is BreakerState.OPEN
        assert breaker.next_probe_s() >= 15.0

    def test_fresh_trip_still_uses_current_time(self):
        breaker = CircuitBreaker(0, failure_threshold=1, cooldown_s=5.0)
        breaker.trip(100.0, "health")
        assert breaker.next_probe_s() == 105.0

    def test_later_retrip_moves_probe_forward(self):
        breaker = CircuitBreaker(0, failure_threshold=1, cooldown_s=5.0)
        breaker.trip(10.0, "health")
        breaker.allow(15.0)
        breaker.record_failure(16.0)  # probe failed at a later instant
        assert breaker.next_probe_s() == 21.0


# ---------------------------------------------------------------------------
# Satellite: corrupt-checkpoint skip is observable
# ---------------------------------------------------------------------------
class TestCheckpointCorruptSkipTelemetry:
    def test_skip_emits_event_and_counter(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(1, {"step": 1, "w": np.ones(2)})
        store.save(2, {"step": 2, "w": np.ones(2) * 2})
        flip_file_bit(store.path_for(2), np.random.default_rng(0))
        with telemetry.session() as t, pytest.warns(UserWarning):
            latest = store.latest()
        assert latest is not None and latest[0] == 1  # fell back
        events = t.events.of_kind("checkpoint_corrupt_skipped")
        assert len(events) == 1
        assert events[0].fields["step"] == 2
        assert str(store.path_for(2)) == events[0].fields["path"]
        text = t.metrics.to_prometheus()
        assert "repro_checkpoint_corrupt_skipped_total 1" in text

    def test_no_event_when_store_healthy(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(1, {"step": 1})
        with telemetry.session() as t:
            assert store.latest()[0] == 1
        assert not t.events.of_kind("checkpoint_corrupt_skipped")


# ---------------------------------------------------------------------------
# Audit
# ---------------------------------------------------------------------------
class TestAudit:
    def test_clean_chaos_run_passes_all_checks(self):
        outcome = _run_serve(0, True)
        assert outcome["ok"], outcome["failed"]
        assert outcome["applied"]  # chaos actually fired

    def test_tampered_decision_log_fails_atomicity(self):
        from repro.chaos import audit_serve_run

        report, _, _, _ = _serve_exec(0, False)
        dropped = [r for r in report.decisions if r["kind"] != "complete"]
        tampered = dataclasses.replace(report, decisions=dropped)
        result = audit_serve_run(tampered)
        assert any("atomic_batches" in f for f in result.failed())

    def test_replay_mismatch_detected(self):
        from repro.chaos import audit_serve_run

        report, _, _, _ = _serve_exec(0, False)
        other, _, _, _ = _serve_exec(1, False)
        result = audit_serve_run(report, replay=other)
        assert any("bit_identical_replay" in f for f in result.failed())


# ---------------------------------------------------------------------------
# Satellite: seeded bit-identity, with and without chaos (hypothesis)
# ---------------------------------------------------------------------------
class TestChaosDeterminismProperties:
    @given(seed=st.integers(0, 50))
    @settings(max_examples=5, deadline=None)
    def test_same_seeds_same_bits_under_chaos(self, seed):
        a, _, _, sa = _serve_exec(seed, True)
        b, _, _, sb = _serve_exec(seed, True)
        assert _serve_digest(a) == _serve_digest(b)
        assert sa.applied == sb.applied

    @given(seed=st.integers(0, 50))
    @settings(max_examples=5, deadline=None)
    def test_empty_plan_session_matches_no_session(self, seed):
        """Chaos compiled in but not planned changes no output bit."""
        from repro.serving.workload import run_serve_workload

        config = dataclasses.replace(
            _small_workload_config(), seed=int(seed)
        )
        report_off, _ = run_serve_workload(config)
        with chaos_scope(ChaosPlan(seed=0)):
            report_on, _ = run_serve_workload(config)
        assert _serve_digest(report_off) == _serve_digest(report_on)


def _small_workload_config():
    from repro.serving.workload import Phase, WorkloadConfig

    return WorkloadConfig(
        phases=(Phase("warm", 40, 0.6), Phase("drain", 40, 0.4))
    )


# ---------------------------------------------------------------------------
# Soak harness
# ---------------------------------------------------------------------------
class TestSoak:
    def test_config_validation(self):
        with pytest.raises(ChaosError):
            SoakConfig(scenarios=("nope",))
        with pytest.raises(ChaosError):
            SoakConfig(repeats=0)
        with pytest.raises(ChaosError):
            SoakConfig(seeds=())

    def test_cell_passes_and_carries_injections(self):
        cell = run_cell("serve", 0, repeats=2, chaos_enabled=True)
        assert cell["ok"], cell["failed_checks"]
        assert cell["digest"]
        assert sum(cell["injections_applied"].values()) >= 1
        assert cell["telemetry"] is None  # only failures get snapshots

    def test_matrix_schema_valid_and_renderable(self):
        doc = run_soak(
            SoakConfig(scenarios=("serve",), seeds=(0, 1), repeats=2)
        )
        assert validate_matrix(doc) == []
        assert not doc["flaky"]
        text = render_matrix(doc)
        assert "serve" in text and "pass" in text
        json.dumps(doc)  # artifact-ready

    def test_validate_matrix_catches_holes(self):
        doc = run_soak(SoakConfig(scenarios=("serve",), seeds=(0,), repeats=1))
        broken = dict(doc, cells=[])
        assert any("coverage" in p for p in validate_matrix(broken))
        assert any("missing key" in p for p in validate_matrix({"schema": 1}))

    def test_self_audit_detects_unhandled_fault(self):
        verdict = run_self_audit(0)
        assert verdict["ok"]
        assert verdict["sabotaged_cell_failed"]

    def test_no_chaos_sweep_applies_nothing(self):
        cell = run_cell("serve", 0, repeats=1, chaos_enabled=False)
        assert cell["ok"], cell["failed_checks"]
        assert cell["injections_applied"] == {}
