"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.arch.control import RangeNormalizer
from repro.arch.weight_bank import WeightBank
from repro.dataflow.tiling import TileSchedule
from repro.devices.activation_cell import GSTActivationCell
from repro.devices.gst import patch_transmission
from repro.devices.mrr import AddDropMRR, RingGeometry
from repro.devices.pcm_mrr import build_calibration
from repro.nn.layers import GEMMShape
from repro.nn.quantization import UniformQuantizer

_CAL = build_calibration()

weights = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)
weight_arrays = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 16), st.integers(1, 16)),
    elements=weights,
)


class TestQuantizerProperties:
    @given(v=arrays(np.float64, st.integers(1, 64), elements=weights),
           bits=st.integers(2, 10))
    def test_roundtrip_error_bounded_by_half_step(self, v, bits):
        q = UniformQuantizer.from_bits(bits)
        assert np.max(np.abs(q.roundtrip(v) - v)) <= q.step / 2 + 1e-12

    @given(v=arrays(np.float64, st.integers(1, 64), elements=weights))
    def test_quantization_idempotent(self, v):
        q = UniformQuantizer(255)
        once = q.roundtrip(v)
        twice = q.roundtrip(once)
        assert np.array_equal(once, twice)

    @given(v=arrays(np.float64, st.integers(2, 64), elements=weights))
    def test_quantization_preserves_order(self, v):
        q = UniformQuantizer(255)
        order = np.argsort(v, kind="stable")
        rq = q.roundtrip(v)
        assert np.all(np.diff(rq[order]) >= -1e-12)

    @given(bits=st.integers(2, 12))
    def test_levels_formula(self, bits):
        assert UniformQuantizer.from_bits(bits).levels == 2**bits - 1


class TestCalibrationProperties:
    @given(w=weights)
    def test_weight_fraction_weight_roundtrip(self, w):
        c = _CAL.weight_to_fraction(w)
        assert 0.0 <= float(c) <= 1.0
        assert float(_CAL.fraction_to_weight(c)) == pytest.approx(w, abs=5e-3)

    @given(w1=weights, w2=weights)
    def test_fraction_ordering_inverts_weight_ordering(self, w1, w2):
        c1 = float(_CAL.weight_to_fraction(w1))
        c2 = float(_CAL.weight_to_fraction(w2))
        if w1 < w2 - 1e-9:
            assert c1 >= c2


class TestMRRProperties:
    @given(
        loss=st.floats(min_value=0.3, max_value=1.0),
        coupling=st.floats(min_value=0.5, max_value=0.99),
        lam=st.floats(min_value=1.5e-6, max_value=1.6e-6),
    )
    def test_passive_ring_never_amplifies(self, loss, coupling, lam):
        ring = AddDropMRR(
            input_coupling=coupling, drop_coupling=coupling, ring_loss=0.999,
            extra_loss=loss,
        )
        total = float(ring.through(lam)) + float(ring.drop(lam))
        assert 0.0 <= total <= 1.0 + 1e-9

    @given(radius=st.floats(min_value=2e-6, max_value=60e-6))
    def test_fsr_positive_and_shrinks_with_radius(self, radius):
        small = RingGeometry(radius_m=radius)
        big = RingGeometry(radius_m=radius * 2)
        assert big.free_spectral_range() < small.free_spectral_range()


class TestGSTProperties:
    @given(
        c=st.floats(min_value=0.0, max_value=1.0),
        length=st.floats(min_value=0.0, max_value=2e-6),
    )
    def test_patch_transmission_in_unit_interval(self, c, length):
        t = float(patch_transmission(c, length))
        assert 0.0 < t <= 1.0

    @given(
        c1=st.floats(min_value=0.0, max_value=1.0),
        c2=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_transmission_antitone_in_crystallinity(self, c1, c2):
        t1 = float(patch_transmission(c1, 0.5e-6))
        t2 = float(patch_transmission(c2, 0.5e-6))
        if c1 < c2:
            # Antitone up to float rounding: adjacent crystallinities can
            # evaluate within 1 ULP of each other (e.g. c1=0, c2~1e-16).
            assert t1 >= t2 - 1e-12


class TestActivationProperties:
    @given(h=arrays(np.float64, st.integers(1, 32),
                    elements=st.floats(-10, 10, allow_nan=False)),
           scale=st.floats(min_value=1e-3, max_value=100.0))
    def test_positive_homogeneity(self, h, scale):
        cell = GSTActivationCell()
        assert np.allclose(cell.activate(scale * h), scale * cell.activate(h),
                           rtol=1e-12, atol=1e-12)

    @given(h=arrays(np.float64, st.integers(1, 32),
                    elements=st.floats(-10, 10, allow_nan=False)))
    def test_output_nonnegative_and_derivative_consistent(self, h):
        cell = GSTActivationCell()
        out = cell.activate(h)
        assert np.all(out >= 0)
        d = cell.derivative(h)
        assert np.all((d == 0) | np.isclose(d, 0.34))


class TestWeightBankProperties:
    @settings(max_examples=25, deadline=None)
    @given(w=weight_arrays)
    def test_programmed_error_bounded(self, w):
        bank = WeightBank()
        realized = bank.program(w)
        assert np.max(np.abs(realized - w)) <= bank.weight_step / 2 + 1e-12

    @settings(max_examples=25, deadline=None)
    @given(
        w=weight_arrays,
        data=st.data(),
    )
    def test_matvec_linearity(self, w, data):
        """The analog MVP must be exactly linear in the input."""
        bank = WeightBank()
        bank.program(w)
        n = w.shape[1]
        x1 = np.array(data.draw(st.lists(st.floats(-0.5, 0.5), min_size=n, max_size=n)))
        x2 = np.array(data.draw(st.lists(st.floats(-0.5, 0.5), min_size=n, max_size=n)))
        lhs = bank.matvec(np.clip(x1 + x2, -1, 1))
        rhs = bank.matvec(x1) + bank.matvec(x2)
        if np.max(np.abs(x1 + x2)) <= 1.0:
            assert np.allclose(lhs, rhs, atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(w=weight_arrays)
    def test_matvec_bounded_by_dimensions(self, w):
        """|output| <= number of columns (inputs and weights in [-1, 1])."""
        bank = WeightBank()
        bank.program(w)
        x = np.ones(w.shape[1])
        out = bank.matvec(x)
        assert np.all(np.abs(out) <= w.shape[1] + 1e-9)


class TestTilingProperties:
    gemm_dims = st.tuples(
        st.integers(1, 512), st.integers(1, 512), st.integers(1, 512),
        st.integers(1, 32),
    )

    @given(dims=gemm_dims)
    def test_tiles_cover_all_cells(self, dims):
        m, k, n, g = dims
        s = TileSchedule(GEMMShape(m=m, k=k, n=n, groups=g), 16, 16)
        capacity = s.n_tiles * 16 * 16
        assert capacity >= s.cells
        assert s.cells == m * k * g

    @given(dims=gemm_dims)
    def test_occupancy_in_unit_interval(self, dims):
        m, k, n, g = dims
        s = TileSchedule(GEMMShape(m=m, k=k, n=n, groups=g), 16, 16)
        assert 0.0 < s.mean_occupancy <= 1.0

    @given(dims=gemm_dims, pes=st.integers(1, 64))
    def test_rounds_bounds(self, dims, pes):
        m, k, n, g = dims
        s = TileSchedule(GEMMShape(m=m, k=k, n=n, groups=g), 16, 16)
        rounds = s.rounds(pes)
        assert rounds * pes >= s.n_tiles
        assert (rounds - 1) * pes < s.n_tiles

    @given(dims=gemm_dims)
    def test_symbols_account_for_all_macs(self, dims):
        """Every MAC must be covered: symbols x bank capacity >= MACs."""
        m, k, n, g = dims
        s = TileSchedule(GEMMShape(m=m, k=k, n=n, groups=g), 16, 16)
        assert s.symbols * 256 >= s.gemm.macs


class TestNormalizerProperties:
    @given(v=arrays(np.float64, st.integers(1, 32),
                    elements=st.floats(-1e6, 1e6, allow_nan=False)))
    def test_normalized_in_range_and_restorable(self, v):
        norm = RangeNormalizer.normalize(v)
        assert np.max(np.abs(norm.values)) <= 1.0 + 1e-12
        assert np.allclose(norm.restore(norm.values), v, rtol=1e-12, atol=1e-12)


class TestPhysicalBankProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        w=arrays(np.float64, st.tuples(st.just(4), st.just(4)), elements=weights),
        data=st.data(),
    )
    def test_physical_matches_normalized(self, w, data):
        """Watts-to-amps physics and the normalized abstraction agree for
        any programmable weight matrix and non-negative input."""
        from repro.devices.waveguide import WDMChannelPlan
        from repro.optics import PhysicalWeightBank

        x = np.array(data.draw(st.lists(st.floats(0, 1), min_size=4, max_size=4)))
        physical = PhysicalWeightBank(rows=4, plan=WDMChannelPlan(4))
        physical.program(w)
        normalized = WeightBank(rows=4, cols=4)
        normalized.program(w)
        out = physical.forward(x)
        assert np.max(np.abs(out.normalized - normalized.matvec(x))) < 1e-6


class TestLinkBudgetProperties:
    @given(
        rows=st.integers(1, 256),
        power=st.floats(min_value=1e-4, max_value=1e-1),
    )
    def test_snr_monotone_decreasing_in_rows(self, rows, power):
        from repro.optics import LinkBudget

        budget = LinkBudget()
        assert budget.snr_db(rows, 16, power) >= budget.snr_db(rows + 1, 16, power)

    @given(power=st.floats(min_value=1e-4, max_value=1e-1))
    def test_more_power_never_hurts(self, power):
        from repro.optics import LinkBudget

        budget = LinkBudget()
        assert budget.snr_db(16, 16, power * 2) > budget.snr_db(16, 16, power)


class TestDriftProperties:
    @given(
        c=st.floats(min_value=0.0, max_value=1.0),
        age=st.floats(min_value=0.0, max_value=1e9),
        temp=st.floats(min_value=280.0, max_value=420.0),
    )
    def test_aged_fraction_bounded_and_increasing(self, c, age, temp):
        from repro.devices.drift import RetentionModel

        model = RetentionModel()
        aged = float(model.aged_fraction(c, age, temp))
        assert c - 1e-12 <= aged <= 1.0 + 1e-12

    @given(
        c=st.floats(min_value=0.0, max_value=1.0),
        t1=st.floats(min_value=0.0, max_value=1e8),
        t2=st.floats(min_value=0.0, max_value=1e8),
    )
    def test_aging_monotone_in_time(self, c, t1, t2):
        from repro.devices.drift import RetentionModel

        model = RetentionModel()
        lo, hi = sorted((t1, t2))
        assert float(model.aged_fraction(c, lo, 360.0)) <= float(
            model.aged_fraction(c, hi, 360.0)
        ) + 1e-12


class TestThermalCrosstalkProperties:
    @given(
        coupling=st.floats(min_value=0.0, max_value=0.1),
        n=st.integers(2, 32),
    )
    def test_worst_error_scales_with_coupling(self, coupling, n):
        from repro.devices.thermal_crosstalk import ThermalCrosstalkModel

        model = ThermalCrosstalkModel(n_rings=n, adjacent_coupling=coupling)
        err = model.worst_case_error()
        assert err >= 0
        if coupling == 0:
            assert err == 0

    @given(c1=st.floats(0.0, 0.05), c2=st.floats(0.0, 0.05))
    def test_bits_antitone_in_coupling(self, c1, c2):
        from repro.devices.thermal_crosstalk import ThermalCrosstalkModel

        lo, hi = sorted((c1, c2))
        bits_lo = ThermalCrosstalkModel(adjacent_coupling=lo).usable_bits()
        bits_hi = ThermalCrosstalkModel(adjacent_coupling=hi).usable_bits()
        assert bits_lo >= bits_hi


class TestProgramVerifyProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        targets=arrays(np.float64, st.integers(1, 64),
                       elements=st.floats(0, 254)),
        seed=st.integers(0, 1000),
    )
    def test_achieved_levels_in_grid(self, targets, seed):
        from repro.devices.program_verify import ProgramVerifyWriter

        result = ProgramVerifyWriter(seed=seed).write(targets)
        assert np.all(result.achieved_levels >= 0)
        assert np.all(result.achieved_levels <= 254)
        assert np.all(result.pulses >= 1)
        assert np.all(result.pulses <= 10)


class TestRepairProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        w=arrays(np.float64, st.tuples(st.integers(2, 8), st.integers(1, 8)),
                 elements=weights),
        data=st.data(),
    )
    def test_spare_remap_preserves_healthy_rows(self, w, data):
        """Remapping one logical row must not move any other row's
        realized weights — the spare routing change is row-local."""
        rows = w.shape[0]
        bank = WeightBank(rows=rows, cols=w.shape[1], spare_rows=2)
        bank.program(w)
        before = bank.logical_weights
        victim = data.draw(st.integers(0, rows - 1))
        bank.remap_row(victim)
        bank.program(w)
        after = bank.logical_weights
        healthy = [r for r in range(rows) if r != victim]
        assert np.array_equal(before[healthy], after[healthy])

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 200),
        fraction=st.floats(0.0, 0.15),
        batch=st.integers(1, 6),
    )
    def test_symbol_parity_under_faults_and_repair(self, seed, fraction, batch):
        """forward and forward_batch must agree symbol-for-symbol (and on
        outputs) with stuck faults injected and repair remaps active."""
        import warnings

        from repro import TridentAccelerator, TridentConfig
        from repro.devices.program_verify import ProgramVerifyConfig
        from repro.errors import WriteConvergenceWarning
        from repro.faults import FaultManager, RepairConfig

        rng = np.random.default_rng(seed)
        acc = TridentAccelerator(
            config=TridentConfig(spare_rows=4, convergence_floor=0.0),
            seed=seed,
            program_verify=ProgramVerifyConfig(),
        )
        acc.map_mlp([6, 8, 3])
        acc.inject_stuck_faults(fraction, stuck_level=254)
        manager = FaultManager(acc, config=RepairConfig(policy="spare"))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", WriteConvergenceWarning)
            manager.deploy(
                [rng.uniform(-1, 1, (8, 6)), rng.uniform(-1, 1, (3, 8))]
            )
        xs = rng.uniform(-1, 1, (batch, 6))
        before = acc.counters.snapshot()
        out_batch = acc.forward_batch(xs)
        batch_delta = acc.counters.diff(before).as_dict()
        before = acc.counters.snapshot()
        out_sample = np.stack([acc.forward(x) for x in xs])
        sample_delta = acc.counters.diff(before).as_dict()
        assert batch_delta == sample_delta
        assert np.allclose(out_batch, out_sample)

    @settings(max_examples=15, deadline=None)
    @given(
        w=arrays(np.float64, st.tuples(st.integers(2, 6), st.integers(1, 6)),
                 elements=weights),
        data=st.data(),
    )
    def test_fully_repaired_bank_matches_never_faulted(self, w, data):
        """After every stuck row is remapped onto clean spares, the bank's
        logical weights must match a never-faulted bank's within the
        quantization step (here: exactly — the writer is noise-free)."""
        from repro.devices.program_verify import ProgramVerifyConfig, ProgramVerifyWriter

        rows, cols = w.shape
        exact = ProgramVerifyConfig(
            write_std_levels=0.0, read_std_levels=0.0, max_iterations=2
        )
        clean_bank = WeightBank(rows=rows, cols=cols, spare_rows=rows)
        clean_bank.program_verified(w, ProgramVerifyWriter(exact, seed=0))
        reference = clean_bank.logical_weights

        faulty_bank = WeightBank(
            rows=rows, cols=cols, spare_rows=rows, convergence_floor=0.0
        )
        n_bad = data.draw(st.integers(1, rows))
        bad_rows = data.draw(
            st.lists(st.integers(0, rows - 1), min_size=n_bad, max_size=n_bad,
                     unique=True)
        )
        for row in bad_rows:
            faulty_bank._stuck_mask[row, :] = True
            faulty_bank._stuck_levels[row, :] = 254
        for row in bad_rows:
            faulty_bank.remap_row(row)
        faulty_bank.program_verified(w, ProgramVerifyWriter(exact, seed=0))
        assert np.max(np.abs(faulty_bank.logical_weights - reference)) \
            <= faulty_bank.weight_step
