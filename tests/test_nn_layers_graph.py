"""Tests for layer descriptors and the DAG network."""

import pytest

from repro.errors import ShapeError
from repro.nn.graph import Network
from repro.nn.layers import (
    Activation,
    Add,
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GEMMShape,
    GlobalAvgPool,
    Pool,
    TensorShape,
)

IN224 = TensorShape(224, 224, 3)


class TestTensorShape:
    def test_elements_and_bytes(self):
        s = TensorShape(4, 5, 6)
        assert s.elements == 120
        assert s.bytes() == 120
        assert s.bytes(2) == 240

    def test_rejects_nonpositive(self):
        with pytest.raises(ShapeError):
            TensorShape(0, 5, 5)


class TestConv2D:
    def test_output_shape_same_padding(self):
        conv = Conv2D("c", 64, kernel=3)
        assert conv.output_shape([IN224]) == TensorShape(224, 224, 64)

    def test_output_shape_stride(self):
        conv = Conv2D("c", 64, kernel=7, stride=2, padding=3)
        assert conv.output_shape([IN224]) == TensorShape(112, 112, 64)

    def test_alexnet_first_layer(self):
        conv = Conv2D("c", 96, kernel=11, stride=4, padding=2)
        assert conv.output_shape([IN224]) == TensorShape(55, 55, 96)

    def test_macs_formula(self):
        conv = Conv2D("c", 64, kernel=3)
        s = TensorShape(8, 8, 16)
        # 8*8 positions * 64 outputs * 3*3*16 reduction
        assert conv.macs([s]) == 64 * 64 * 9 * 16

    def test_params_with_bias(self):
        conv = Conv2D("c", 64, kernel=3)
        assert conv.params([TensorShape(8, 8, 16)]) == 64 * 9 * 16 + 64

    def test_params_without_bias(self):
        conv = Conv2D("c", 64, kernel=3, bias=False)
        assert conv.params([TensorShape(8, 8, 16)]) == 64 * 9 * 16

    def test_gemm_lowering(self):
        conv = Conv2D("c", 64, kernel=3)
        g = conv.gemm([TensorShape(8, 8, 16)])
        assert g == GEMMShape(m=64, k=144, n=64, groups=1)
        assert g.macs == conv.macs([TensorShape(8, 8, 16)])

    def test_grouped_conv(self):
        conv = Conv2D("c", 32, kernel=3, groups=4)
        g = conv.gemm([TensorShape(8, 8, 16)])
        assert g.groups == 4
        assert g.m == 8
        assert g.k == 9 * 4

    def test_groups_must_divide(self):
        conv = Conv2D("c", 30, kernel=3, groups=4)
        with pytest.raises(ShapeError):
            conv.output_shape([TensorShape(8, 8, 16)])

    def test_collapsed_output_rejected(self):
        conv = Conv2D("c", 8, kernel=9, padding=0)
        with pytest.raises(ShapeError):
            conv.output_shape([TensorShape(4, 4, 3)])

    def test_multiple_inputs_rejected(self):
        conv = Conv2D("c", 8, kernel=1)
        with pytest.raises(ShapeError):
            conv.output_shape([IN224, IN224])


class TestDepthwise:
    def test_output_preserves_channels(self):
        dw = DepthwiseConv2D("dw", kernel=3, stride=2)
        assert dw.output_shape([TensorShape(16, 16, 32)]) == TensorShape(8, 8, 32)

    def test_gemm_one_filter_per_channel(self):
        dw = DepthwiseConv2D("dw", kernel=3)
        g = dw.gemm([TensorShape(16, 16, 32)])
        assert g.m == 1
        assert g.k == 9
        assert g.groups == 32

    def test_macs_cheaper_than_full_conv(self):
        s = TensorShape(16, 16, 32)
        dw = DepthwiseConv2D("dw", kernel=3)
        full = Conv2D("c", 32, kernel=3)
        assert dw.macs([s]) * 32 == full.macs([s])

    def test_params(self):
        dw = DepthwiseConv2D("dw", kernel=3)
        assert dw.params([TensorShape(16, 16, 32)]) == 32 * 9 + 32


class TestDense:
    def test_flattens_input(self):
        d = Dense("fc", 10)
        assert d.output_shape([TensorShape(6, 6, 256)]) == TensorShape(1, 1, 10)

    def test_gemm(self):
        d = Dense("fc", 10)
        g = d.gemm([TensorShape(6, 6, 256)])
        assert g == GEMMShape(m=10, k=9216, n=1)

    def test_params(self):
        d = Dense("fc", 10)
        assert d.params([TensorShape(1, 1, 20)]) == 210


class TestPoolAndFriends:
    def test_maxpool(self):
        p = Pool("p", kernel=3, stride=2)
        assert p.output_shape([TensorShape(55, 55, 96)]) == TensorShape(27, 27, 96)

    def test_pool_defaults_stride_to_kernel(self):
        p = Pool("p", kernel=2)
        assert p.output_shape([TensorShape(8, 8, 4)]) == TensorShape(4, 4, 4)

    def test_pool_rejects_bad_mode(self):
        with pytest.raises(ShapeError):
            Pool("p", kernel=2, mode="median")

    def test_global_avg_pool(self):
        g = GlobalAvgPool("gap")
        assert g.output_shape([TensorShape(7, 7, 2048)]) == TensorShape(1, 1, 2048)

    def test_pools_have_no_macs_or_gemm(self):
        p = Pool("p", kernel=2)
        assert p.macs([TensorShape(8, 8, 4)]) == 0
        assert p.gemm([TensorShape(8, 8, 4)]) is None

    def test_activation_passthrough(self):
        a = Activation("act", kind="relu")
        assert a.output_shape([IN224]) == IN224

    def test_batchnorm_params(self):
        bn = BatchNorm("bn")
        assert bn.params([TensorShape(8, 8, 64)]) == 128


class TestAddConcat:
    def test_add_same_shapes(self):
        a = Add("add")
        s = TensorShape(7, 7, 64)
        assert a.output_shape([s, s]) == s

    def test_add_rejects_mismatch(self):
        a = Add("add")
        with pytest.raises(ShapeError):
            a.output_shape([TensorShape(7, 7, 64), TensorShape(7, 7, 32)])

    def test_add_needs_two_inputs(self):
        with pytest.raises(ShapeError):
            Add("add").output_shape([IN224])

    def test_concat_channels(self):
        c = Concat("cat")
        out = c.output_shape([TensorShape(7, 7, 64), TensorShape(7, 7, 32)])
        assert out == TensorShape(7, 7, 96)

    def test_concat_rejects_spatial_mismatch(self):
        c = Concat("cat")
        with pytest.raises(ShapeError):
            c.output_shape([TensorShape(7, 7, 64), TensorShape(8, 8, 32)])


class TestNetwork:
    def _chain(self):
        net = Network("tiny", TensorShape(8, 8, 3))
        net.add(Conv2D("c1", 4, kernel=3))
        net.add(Pool("p1", kernel=2))
        net.add(Dense("fc", 10, fused_activation=False))
        return net

    def test_shapes_resolve(self):
        net = self._chain()
        assert net.shape_of("c1") == TensorShape(8, 8, 4)
        assert net.shape_of("p1") == TensorShape(4, 4, 4)
        assert net.output_shape == TensorShape(1, 1, 10)

    def test_stats_totals(self):
        net = self._chain()
        s = net.stats()
        assert s.total_macs == 8 * 8 * 4 * 27 + 10 * 64
        assert s.n_weight_layers == 2
        assert len(s.layers) == 3

    def test_branching(self):
        net = Network("branch", TensorShape(8, 8, 4))
        a = net.add(Conv2D("a", 4, kernel=1))
        b = net.add(Conv2D("b", 4, kernel=1), "input")
        net.add(Add("sum"), [a, b])
        assert net.output_shape == TensorShape(8, 8, 4)

    def test_duplicate_name_rejected(self):
        net = Network("n", IN224)
        net.add(Conv2D("c", 4, kernel=1))
        with pytest.raises(ShapeError):
            net.add(Conv2D("c", 8, kernel=1))

    def test_unknown_input_rejected(self):
        net = Network("n", IN224)
        with pytest.raises(ShapeError):
            net.add(Conv2D("c", 4, kernel=1), "ghost")

    def test_layer_lookup(self):
        net = self._chain()
        assert net.layer("c1").name == "c1"
        with pytest.raises(ShapeError):
            net.layer("nope")
        assert "c1" in net
        assert len(net) == 3

    def test_inputs_of(self):
        net = self._chain()
        assert net.inputs_of("c1") == ["input"]
        assert net.inputs_of("p1") == ["c1"]

    def test_compute_layers_only_weighted(self):
        net = self._chain()
        names = [s.name for s in net.compute_layers()]
        assert names == ["c1", "fc"]

    def test_activation_totals(self):
        net = self._chain()
        # Only c1 has fused activation: 8*8*4 elements.
        assert net.stats().total_activations == 256
