"""Unit-conversion and constant sanity tests."""

import pytest

from repro import constants as c


def test_wavelength_frequency_roundtrip():
    lam = 1550e-9
    assert c.frequency_to_wavelength(c.wavelength_to_frequency(lam)) == pytest.approx(lam)


def test_c_band_frequency_is_about_193_thz():
    assert c.wavelength_to_frequency(c.C_BAND_CENTER) == pytest.approx(193.4e12, rel=1e-3)


def test_wavelength_to_frequency_rejects_nonpositive():
    with pytest.raises(ValueError):
        c.wavelength_to_frequency(0.0)
    with pytest.raises(ValueError):
        c.wavelength_to_frequency(-1.0)


def test_frequency_to_wavelength_rejects_nonpositive():
    with pytest.raises(ValueError):
        c.frequency_to_wavelength(0.0)


def test_db_roundtrip():
    assert c.db_to_linear(c.linear_to_db(0.5)) == pytest.approx(0.5)


def test_db_known_values():
    assert c.db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)
    assert c.linear_to_db(10.0) == pytest.approx(10.0)


def test_linear_to_db_rejects_nonpositive():
    with pytest.raises(ValueError):
        c.linear_to_db(0.0)


def test_dbm_conversions():
    assert c.dbm_to_watts(0.0) == pytest.approx(1e-3)
    assert c.watts_to_dbm(1e-3) == pytest.approx(0.0)
    assert c.watts_to_dbm(c.dbm_to_watts(7.3)) == pytest.approx(7.3)


def test_watts_to_dbm_rejects_nonpositive():
    with pytest.raises(ValueError):
        c.watts_to_dbm(0.0)


def test_unit_multipliers():
    assert c.NM == 1e-9
    assert 1.6 * c.NM == pytest.approx(c.MIN_WDM_SPACING)
    assert c.KB == 1024
    assert c.MB == 1024 * 1024


def test_activation_wavelength_matches_paper_fig3():
    assert c.ACTIVATION_WAVELENGTH == pytest.approx(1553.4e-9)


def test_fundamental_constants():
    assert c.SPEED_OF_LIGHT == pytest.approx(2.998e8, rel=1e-3)
    assert c.ELEMENTARY_CHARGE == pytest.approx(1.602e-19, rel=1e-3)
    assert c.BOLTZMANN == pytest.approx(1.381e-23, rel=1e-3)
