"""Tests for the GST activation cell (Fig 3) and the LDSU (Fig 2d)."""

import numpy as np
import pytest

from repro.devices.activation_cell import GSTActivationCell, GSTActivationConfig
from repro.devices.ldsu import LDSU, AnalogComparator, DFlipFlop
from repro.errors import ConfigError, DeviceError, EnduranceExceededError


class TestActivationPhysical:
    def test_zero_below_threshold(self):
        cell = GSTActivationCell()
        e = np.array([0.0, 100e-12, 429e-12])
        assert np.allclose(cell.response_energy(e), 0.0)

    def test_linear_above_threshold_with_paper_slope(self):
        cell = GSTActivationCell()
        e = np.array([530e-12, 630e-12])
        out = cell.response_energy(e)
        slope = (out[1] - out[0]) / (e[1] - e[0])
        assert slope == pytest.approx(0.34)

    def test_threshold_is_430pj(self):
        cell = GSTActivationCell()
        assert cell.config.threshold_j == pytest.approx(430e-12)

    def test_continuous_at_threshold(self):
        cell = GSTActivationCell()
        just_above = float(cell.response_energy(cell.config.threshold_j * (1 + 1e-9)))
        assert just_above == pytest.approx(0.0, abs=1e-18)

    def test_leakage_mode(self):
        cell = GSTActivationCell(config=GSTActivationConfig(leakage=0.01))
        out = float(cell.response_energy(100e-12))
        assert out == pytest.approx(1e-12)

    def test_rejects_negative_energy(self):
        with pytest.raises(DeviceError):
            GSTActivationCell().response_energy(-1e-12)

    def test_bypass_passes_through(self):
        cell = GSTActivationCell(bypass=True)
        e = np.array([1e-12, 500e-12])
        assert np.allclose(cell.response_energy(e), e)


class TestActivationNormalized:
    def test_relu_like(self):
        cell = GSTActivationCell()
        h = np.array([-2.0, -0.1, 0.0, 0.5, 3.0])
        out = cell.activate(h)
        assert np.allclose(out, 0.34 * np.maximum(h, 0))

    def test_derivative_two_valued(self):
        cell = GSTActivationCell()
        h = np.array([-1.0, 0.0, 1e-9, 5.0])
        d = cell.derivative(h)
        assert np.allclose(d, [0.0, 0.0, 0.34, 0.34])

    def test_bypass_identity_and_unit_derivative(self):
        cell = GSTActivationCell(bypass=True)
        h = np.array([-1.0, 2.0])
        assert np.allclose(cell.activate(h), h)
        assert np.allclose(cell.derivative(h), 1.0)

    def test_positive_homogeneity(self):
        """f(s*h) = s*f(h) for s > 0 — the property the accelerator's
        range normalization relies on."""
        cell = GSTActivationCell()
        h = np.array([-1.0, 0.3, 2.0])
        assert np.allclose(cell.activate(5.0 * h), 5.0 * cell.activate(h))


class TestActivationFiring:
    def test_fire_counts_events(self):
        cell = GSTActivationCell()
        cell.fire(np.array([-1.0, 0.5, 2.0]))
        assert cell.firing_events == 2

    def test_fire_accumulates_reset_energy(self):
        cell = GSTActivationCell()
        cell.fire(np.array([1.0, 1.0]))
        assert cell.reset_energy_spent_j == pytest.approx(2 * cell.config.reset_energy_j)

    def test_endurance_enforced(self):
        cfg = GSTActivationConfig(endurance_cycles=3)
        cell = GSTActivationCell(config=cfg)
        cell.fire(np.array([1.0, 1.0, 1.0]))
        with pytest.raises(EnduranceExceededError):
            cell.fire(np.array([1.0]))

    def test_bypass_fire_counts_nothing(self):
        cell = GSTActivationCell(bypass=True)
        cell.fire(np.array([1.0, 2.0]))
        assert cell.firing_events == 0

    def test_remaining_endurance(self):
        cell = GSTActivationCell(config=GSTActivationConfig(endurance_cycles=10))
        cell.fire(np.array([1.0, -1.0, 3.0]))
        assert cell.remaining_endurance == 8

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            GSTActivationConfig(threshold_j=0.0)
        with pytest.raises(ConfigError):
            GSTActivationConfig(slope=-0.1)
        with pytest.raises(ConfigError):
            GSTActivationConfig(leakage=1.0)


class TestComparator:
    def test_compares_against_threshold(self):
        comp = AnalogComparator(threshold_v=0.5)
        out = comp.compare(np.array([0.4, 0.6]))
        assert list(out) == [False, True]

    def test_uncertainty_band_resolves_false(self):
        comp = AnalogComparator(threshold_v=0.0, uncertainty_v=0.1)
        assert not bool(comp.compare(0.05))
        assert bool(comp.compare(0.15))

    def test_rejects_negative_uncertainty(self):
        with pytest.raises(ConfigError):
            AnalogComparator(uncertainty_v=-0.1)


class TestDFlipFlop:
    def test_latch_and_read(self):
        ff = DFlipFlop()
        assert not ff.q
        ff.latch(True)
        assert ff.q
        ff.latch(False)
        assert not ff.q


class TestLDSU:
    def test_capture_stores_bits(self):
        ldsu = LDSU(n_rows=4)
        bits = ldsu.capture(np.array([1.0, -1.0, 0.5, 0.0]))
        assert list(bits) == [True, False, True, False]

    def test_derivative_gains_match_paper(self):
        ldsu = LDSU(n_rows=3)
        ldsu.capture(np.array([2.0, -2.0, 1.0]))
        assert np.allclose(ldsu.derivative_gains(), [0.34, 0.0, 0.34])

    def test_capture_rejects_wrong_shape(self):
        ldsu = LDSU(n_rows=4)
        with pytest.raises(DeviceError):
            ldsu.capture(np.zeros(3))

    def test_clear(self):
        ldsu = LDSU(n_rows=2)
        ldsu.capture(np.array([1.0, 1.0]))
        ldsu.clear()
        assert not ldsu.bits.any()

    def test_bits_returns_copy(self):
        ldsu = LDSU(n_rows=2)
        ldsu.capture(np.array([1.0, 1.0]))
        external = ldsu.bits
        external[:] = False
        assert ldsu.bits.all()

    def test_one_bit_per_row_is_enough(self):
        """The paper's point: the GST activation has exactly two derivative
        values so the LDSU needs only 1 bit/row."""
        ldsu = LDSU(n_rows=8)
        gains = ldsu.derivative_gains()
        assert set(np.unique(gains)) <= {0.0, 0.34}

    def test_rejects_bad_rows(self):
        with pytest.raises(ConfigError):
            LDSU(n_rows=0)

    def test_power_matches_table3(self):
        assert LDSU().power_w == pytest.approx(0.09e-3)


class TestLDSUBatch:
    def test_capture_batch_matches_per_sample_sweep(self):
        ldsu = LDSU(n_rows=3)
        logits = np.array([[1.0, -1.0], [-0.5, 0.5], [0.0, 2.0]])
        plane = ldsu.capture_batch(logits)
        for b in range(2):
            single = LDSU(n_rows=3)
            assert np.array_equal(single.capture(logits[:, b]), plane[:, b])
        # Flip-flops end up holding the final column, exactly as a
        # per-sample sweep would leave them.
        assert np.array_equal(ldsu.bits, plane[:, -1])

    def test_derivative_gains_batch(self):
        ldsu = LDSU(n_rows=2)
        ldsu.capture_batch(np.array([[1.0, -1.0], [-1.0, 1.0]]))
        assert np.allclose(
            ldsu.derivative_gains_batch(), [[0.34, 0.0], [0.0, 0.34]]
        )

    def test_batch_state_requires_capture(self):
        ldsu = LDSU(n_rows=2)
        with pytest.raises(DeviceError):
            ldsu.batch_bits
        with pytest.raises(DeviceError):
            ldsu.derivative_gains_batch()

    def test_capture_batch_rejects_wrong_shape(self):
        ldsu = LDSU(n_rows=4)
        with pytest.raises(DeviceError):
            ldsu.capture_batch(np.zeros((3, 5)))
        with pytest.raises(DeviceError):
            ldsu.capture_batch(np.zeros(4))

    def test_clear_drops_batch_plane(self):
        ldsu = LDSU(n_rows=2)
        ldsu.capture_batch(np.ones((2, 3)))
        ldsu.clear()
        with pytest.raises(DeviceError):
            ldsu.batch_bits
