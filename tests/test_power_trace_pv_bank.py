"""Tests: power traces from schedules + program-verify bank integration."""

import numpy as np
import pytest

from repro.arch.weight_bank import WeightBank, program_with_verify
from repro.dataflow.cost_model import PhotonicArch
from repro.dataflow.power_trace import power_trace
from repro.dataflow.schedule_sim import simulate_layer
from repro.dataflow.tiling import TileSchedule
from repro.devices.program_verify import (
    ProgramVerifyConfig,
    ProgramVerifyResult,
    ProgramVerifyWriter,
)
from repro.errors import ConfigError
from repro.nn.layers import GEMMShape


@pytest.fixture(scope="module")
def arch():
    return PhotonicArch.trident()


def sched(m, k, n):
    return TileSchedule(GEMMShape(m=m, k=k, n=n), 16, 16)


class TestPowerTrace:
    def test_peak_never_exceeds_budget(self, arch):
        """The paper's sizing argument holds dynamically: even with every
        PE mid-write, the chip stays within 30 W."""
        sim = simulate_layer("l", sched(44 * 16, 256, 200), arch)
        trace = power_trace(sim, arch)
        assert trace.peak_w <= 30.0 + 1e-9
        assert trace.peak_w == pytest.approx(
            arch.n_pes * arch.sizing_power_pe_w, rel=0.01
        )

    def test_post_tuning_plateau_at_streaming_power(self, arch):
        """Table III's 0.67 -> 0.11 W drop appears in the trace: once all
        banks are written, chip power sits at PEs x streaming power."""
        sim = simulate_layer("l", sched(44 * 16, 16, 5000), arch)
        trace = power_trace(sim, arch, n_samples=4000)
        # Sample a window well inside the streaming phase.
        mid = (trace.times_s > 0.5 * sim.makespan_s) & (
            trace.times_s < 0.9 * sim.makespan_s
        )
        plateau = trace.power_w[mid]
        assert np.allclose(plateau, arch.n_pes * arch.streaming_power_pe_w)

    def test_trace_energy_matches_event_energy(self, arch):
        """Integrating the trace reproduces the closed-form energy.

        Write-phase power x write time == cells x write energy only at full
        occupancy, so use an exactly full bank tile set.
        """
        sim = simulate_layer("l", sched(44 * 16, 16, 2000), arch)
        trace = power_trace(sim, arch, n_samples=20_000)
        closed = (
            sim.streaming_energy_j
            + sim.n_tiles * arch.sizing_power_pe_w * arch.write_time_s
        )
        assert trace.energy_j() == pytest.approx(closed, rel=0.02)

    def test_single_tile_profile(self, arch):
        sim = simulate_layer("l", sched(16, 16, 1000), arch)
        trace = power_trace(sim, arch, n_samples=1000)
        # One PE active: first the write level, then the streaming level.
        assert trace.power_w[1] == pytest.approx(arch.sizing_power_pe_w)
        assert trace.power_w[-2] == pytest.approx(arch.streaming_power_pe_w)

    def test_mean_below_peak(self, arch):
        sim = simulate_layer("l", sched(100, 100, 300), arch)
        trace = power_trace(sim, arch)
        assert trace.mean_w < trace.peak_w

    def test_requires_events(self, arch):
        sim = simulate_layer("l", sched(16, 16, 10), arch, keep_events=False)
        with pytest.raises(ConfigError):
            power_trace(sim, arch)

    def test_rejects_bad_sampling(self, arch):
        sim = simulate_layer("l", sched(16, 16, 10), arch)
        with pytest.raises(ConfigError):
            power_trace(sim, arch, n_samples=1)


class TestProgramWithVerify:
    def test_accuracy_improves_over_noisy_single_pulse(self, rng):
        w = rng.uniform(-1, 1, (16, 16))
        cfg = ProgramVerifyConfig(write_std_levels=3.0, tolerance_levels=1.0)

        verified_bank = WeightBank()
        realized, result = program_with_verify(
            verified_bank, w, ProgramVerifyWriter(cfg, seed=5)
        )
        single_cfg = ProgramVerifyConfig(
            write_std_levels=3.0, tolerance_levels=1.0, max_iterations=1
        )
        single_bank = WeightBank()
        single_real, _ = program_with_verify(
            single_bank, w, ProgramVerifyWriter(single_cfg, seed=5)
        )
        assert np.abs(realized - w).mean() < np.abs(single_real - w).mean()

    def test_accounting_reflects_extra_pulses(self, rng):
        w = rng.uniform(-1, 1, (8, 8))
        bank = WeightBank()
        _, result = program_with_verify(bank, w, ProgramVerifyWriter(seed=2))
        assert bank.stats.cells_written == result.total_pulses
        expected_energy = (
            result.total_pulses * 660e-12 + result.total_reads * 20e-12
        )
        assert bank.stats.write_energy_j == pytest.approx(expected_energy)

    def test_matvec_consistent_with_achieved_levels(self, rng):
        w = rng.uniform(-1, 1, (8, 8))
        bank = WeightBank()
        realized, _ = program_with_verify(bank, w, ProgramVerifyWriter(seed=3))
        x = rng.uniform(-1, 1, 8)
        assert np.allclose(bank.matvec(x), realized @ x)

    def test_noiseless_writer_equals_plain_program(self, rng):
        w = rng.uniform(-1, 1, (8, 8))
        cfg = ProgramVerifyConfig(write_std_levels=0.0, read_std_levels=0.0)
        pv_bank = WeightBank()
        realized, _ = program_with_verify(pv_bank, w, ProgramVerifyWriter(cfg, seed=0))
        plain = WeightBank()
        expected = plain.program(w)
        assert np.allclose(realized, expected)

    def test_write_time_includes_extra_rounds(self, rng):
        """The verify loop's extra rounds must show up in the recorded
        write time (and hence in any time estimate derived from it)."""
        w = rng.uniform(-1, 1, (8, 8))
        cfg = ProgramVerifyConfig(
            write_std_levels=50.0, tolerance_levels=0.1, max_iterations=4
        )
        bank = WeightBank()
        _, result = program_with_verify(bank, w, ProgramVerifyWriter(cfg, seed=0))
        rounds = int(result.pulses.max())
        assert rounds > 1
        assert bank.stats.write_time_s == pytest.approx(
            rounds * bank.tuning.write_time()
        )

    def test_already_converged_writer_never_refunds_time(self, rng):
        """A pathological writer reporting zero pulses (targets already
        reached) must not *subtract* the write time the nominal program
        charged — the round increment clamps at zero."""

        class ConvergedWriter:
            config = ProgramVerifyConfig()

            def write(self, targets):
                t = np.asarray(targets, dtype=np.float64)
                return ProgramVerifyResult(
                    achieved_levels=t.copy(),
                    pulses=np.zeros(t.shape, dtype=np.int64),
                    reads=np.zeros(t.shape, dtype=np.int64),
                    converged=np.ones(t.shape, dtype=bool),
                    config=self.config,
                )

        w = rng.uniform(-1, 1, (8, 8))
        bank = WeightBank()
        realized, _ = program_with_verify(bank, w, ConvergedWriter())
        assert bank.stats.write_time_s == pytest.approx(bank.tuning.write_time())
        assert bank.stats.write_time_s >= 0.0
        plain = WeightBank()
        assert np.allclose(realized, plain.program(w))
