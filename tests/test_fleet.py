"""Fleet control plane: trace synthesis, pool lifecycle, rollups,
controller behavior, and the end-to-end smoke contract."""

import math

import numpy as np
import pytest

from repro.errors import ServingError
from repro.fleet import (
    Burst,
    ControllerConfig,
    FleetController,
    LADDER,
    TenantSpec,
    TraceConfig,
    WorkerPool,
    fleet_digest,
    run_fleet_workload,
    smoke_chaos_plan,
    smoke_scenario,
    state_digest,
    synthesize_trace,
    window_p99_latency_s,
)
from repro.serving.server import ServerConfig, TridentServer
from repro.telemetry.rollup import ServingRollup

DIMS = (6, 8, 4)


# ---------------------------------------------------------------------------
# Trace synthesis
# ---------------------------------------------------------------------------
class TestTrace:
    def test_same_config_same_trace(self):
        config = TraceConfig(duration_s=1e-4, base_rate_x=1.0, seed=5)
        a = synthesize_trace(config, 1e7, 6, 1e-5)
        b = synthesize_trace(config, 1e7, 6, 1e-5)
        assert len(a) == len(b) > 0
        for ra, rb in zip(a, b):
            assert ra.arrival_s == rb.arrival_s
            assert ra.tenant == rb.tenant
            assert ra.priority == rb.priority
            assert np.array_equal(ra.x, rb.x)

    def test_different_seed_different_trace(self):
        base = TraceConfig(duration_s=1e-4, base_rate_x=1.0, seed=5)
        other = TraceConfig(duration_s=1e-4, base_rate_x=1.0, seed=6)
        a = synthesize_trace(base, 1e7, 6, 1e-5)
        b = synthesize_trace(other, 1e7, 6, 1e-5)
        assert [r.arrival_s for r in a] != [r.arrival_s for r in b]

    def test_diurnal_trough_and_peak(self):
        config = TraceConfig(
            duration_s=1.0, base_rate_x=2.0, diurnal_amplitude=0.5
        )
        assert config.rate_x(0.0) == pytest.approx(1.0)  # trough: base*(1-amp)
        assert config.rate_x(0.5) == pytest.approx(3.0)  # peak:   base*(1+amp)

    def test_burst_multiplies_rate(self):
        config = TraceConfig(
            duration_s=1.0,
            base_rate_x=1.0,
            diurnal_amplitude=0.0,
            bursts=(Burst(0.4, 0.2, 3.0),),
        )
        assert config.rate_x(0.3) == pytest.approx(1.0)
        assert config.rate_x(0.5) == pytest.approx(3.0)
        assert config.peak_rate_x() == pytest.approx(3.0)
        assert config.peak_window() == (0.4, pytest.approx(0.6))

    def test_tenant_mix_and_kinds(self):
        config = TraceConfig(duration_s=2e-4, base_rate_x=1.5, seed=0)
        requests = synthesize_trace(config, 1e7, 6, 1e-5)
        tenants = {r.tenant for r in requests}
        assert {"free", "pro"} <= tenants
        assert all(r.kind in ("infer", "train") for r in requests)
        train = [r for r in requests if r.kind == "train"]
        assert train and all(r.deadline_s is None for r in train)

    def test_validation(self):
        with pytest.raises(ServingError):
            TenantSpec("t", weight=0.5, kind="mystery")
        with pytest.raises(ServingError):
            Burst(0.1, 0.1, 0.5)
        with pytest.raises(ServingError):
            TraceConfig(duration_s=1.0, base_rate_x=1.0, diurnal_amplitude=1.5)
        with pytest.raises(ServingError):
            TraceConfig(
                duration_s=1.0, base_rate_x=1.0, bursts=(Burst(2.0, 1.0, 2.0),)
            )

    def test_max_requests_guard(self):
        config = TraceConfig(
            duration_s=1e-3, base_rate_x=10.0, seed=0, max_requests=100
        )
        with pytest.raises(ServingError, match="max_requests"):
            synthesize_trace(config, 1e7, 6, 1e-5)


# ---------------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------------
def _pool_with_server(n=2, max_queue_depth=16):
    pool = WorkerPool(DIMS, seed=3)
    workers = pool.bootstrap(n)
    server = TridentServer(
        workers,
        config=ServerConfig(max_queue_depth=max_queue_depth, max_batch=4),
    )
    pool.bind(server)
    return pool, server


class TestWorkerPool:
    def test_clone_outputs_bit_identical_to_template(self):
        pool = WorkerPool(DIMS, seed=3)
        template, clone = pool.bootstrap(2)
        x = np.random.default_rng(0).uniform(-1, 1, (5, DIMS[0]))
        assert np.array_equal(
            template.acc.forward_batch(x.copy()),
            clone.acc.forward_batch(x.copy()),
        )
        assert state_digest(template.acc.state_dict()) == state_digest(
            clone.acc.state_dict()
        )

    def test_commission_warm_drain_decommission(self):
        pool, server = _pool_with_server()
        wid = pool.commission(warmup_s=1e-6)
        assert pool.states[wid] == "warming"
        assert wid not in server.active_worker_ids()
        server.clock.advance_to(2e-6)
        assert pool.refresh(server.clock.now()) == [wid]
        assert pool.states[wid] == "active"
        assert wid in server.active_worker_ids()

        pool.begin_drain(wid)
        assert pool.states[wid] == "draining"
        assert wid not in server.active_worker_ids()
        assert pool.try_decommission(wid)
        assert pool.states[wid] == "decommissioned"
        assert wid in pool.checkpoint_digests
        assert len(pool.checkpoint_digests[wid]) == 64
        assert not pool.try_decommission(wid)  # already gone

    def test_decommission_requires_drain(self):
        pool, _server = _pool_with_server()
        assert not pool.try_decommission(0)  # active, not draining
        with pytest.raises(ServingError):
            pool.begin_drain(99)

    def test_cannot_remove_last_worker(self):
        pool, server = _pool_with_server(n=1)
        pool.begin_drain(0)
        with pytest.raises(ServingError):
            server.remove_worker(0)

    def test_bootstrap_only_once(self):
        pool, _server = _pool_with_server()
        with pytest.raises(ServingError):
            pool.bootstrap(1)

    def test_unit_rate_positive(self):
        pool, _server = _pool_with_server()
        assert pool.unit_rate_hz(4) > 0


# ---------------------------------------------------------------------------
# Serving rollup
# ---------------------------------------------------------------------------
class TestServingRollup:
    def test_attainment_counts_sheds_as_misses(self):
        rollup = ServingRollup(window_s=1.0)
        rollup.record_completion(0.1, 1e-6, True)
        rollup.record_completion(0.2, 1e-6, True)
        rollup.record_shed(0.3, "queue_full")
        stats = rollup.window_stats(0.5, slo_latency_s=1e-5)
        assert stats.attainment == pytest.approx(2 / 3)
        assert stats.shed_rate == pytest.approx(1 / 3)
        assert math.isinf(stats.p99_latency_s)

    def test_policy_sheds_excluded_from_attainment(self):
        rollup = ServingRollup(window_s=1.0)
        rollup.record_completion(0.1, 1e-6, True)
        rollup.record_shed(0.2, "degraded_shed")
        stats = rollup.window_stats(0.5, slo_latency_s=1e-5)
        assert stats.attainment == 1.0
        assert stats.sheds == 1
        assert not math.isinf(stats.p99_latency_s)

    def test_window_prunes_old_samples(self):
        rollup = ServingRollup(window_s=0.1)
        rollup.record_shed(0.0, "queue_full")
        rollup.record_completion(1.0, 1e-6, True)
        stats = rollup.window_stats(1.05, slo_latency_s=1e-5)
        assert stats.sheds == 0
        assert stats.completions == 1
        assert stats.attainment == 1.0

    def test_late_completion_misses_slo(self):
        rollup = ServingRollup(window_s=1.0)
        rollup.record_completion(0.1, 5e-5, True)  # latency above SLO
        stats = rollup.window_stats(0.5, slo_latency_s=1e-5)
        assert stats.attainment == 0.0

    def test_tenant_shed_rate(self):
        rollup = ServingRollup(window_s=1.0)
        rollup.record_completion(0.1, 1e-6, True, tenant="a")
        rollup.record_shed(0.2, "queue_full", tenant="a")
        rollup.record_shed(0.3, "queue_full", tenant="b")
        stats = rollup.window_stats(0.5, slo_latency_s=1e-5)
        assert stats.tenant_shed_rate("a") == pytest.approx(0.5)
        assert stats.tenant_shed_rate("b") == 1.0
        assert stats.tenant_shed_rate("silent") == 0.0

    def test_empty_window(self):
        stats = ServingRollup(1.0).window_stats(0.0, slo_latency_s=1e-5)
        assert stats.attainment == 1.0
        assert stats.p99_latency_s == 0.0

    def test_sdc_rate_counts_escalations_against_completions(self):
        rollup = ServingRollup(window_s=1.0)
        rollup.record_completion(0.1, 1e-6, True)
        rollup.record_completion(0.2, 1e-6, True)
        rollup.record_completion(0.3, 1e-6, True)
        rollup.record_sdc(0.4, worker_id=1)
        stats = rollup.window_stats(0.5, slo_latency_s=1e-5)
        assert stats.sdc_count == 1
        assert stats.sdc_by_worker == {1: 1}
        assert stats.sdc_rate() == pytest.approx(1 / 4)

    def test_sdc_window_prunes_to_empty(self):
        rollup = ServingRollup(window_s=0.1)
        rollup.record_sdc(0.0, worker_id=0)
        rollup.record_sdc(0.05, worker_id=2)
        stats = rollup.window_stats(1.0, slo_latency_s=1e-5)
        # Both samples aged out: counts at zero and the per-worker keys
        # gone entirely, not lingering at zero.
        assert stats.sdc_count == 0
        assert stats.sdc_by_worker == {}
        assert stats.sdc_rate() == 0.0


# ---------------------------------------------------------------------------
# Controller
# ---------------------------------------------------------------------------
class TestControllerConfig:
    def test_hysteresis_gap_enforced(self):
        with pytest.raises(ServingError, match="hysteresis"):
            ControllerConfig(
                degraded_enter_attainment=0.9, degraded_exit_attainment=0.5
            )

    def test_power_cap(self):
        config = ControllerConfig(
            per_worker_power_w=0.25,
            power_budget_w=1.0,
            brownout_power_fraction=0.5,
        )
        assert config.power_cap_workers(0) == 4
        assert config.power_cap_workers(LADDER.index("brownout")) == 2


class TestControllerPolicy:
    def _controller(self):
        pool, server = _pool_with_server()
        rollup = ServingRollup(1e-5)
        config = ControllerConfig(min_workers=2, max_workers=8)
        return FleetController(server, pool, rollup, config), server

    def test_rung_policy_is_idempotent(self):
        controller, server = self._controller()
        controller.rung = LADDER.index("shed_low")
        controller._apply_rung_policy()
        applied = len(controller.actuations)
        assert applied > 0
        assert server.min_priority == controller.config.shed_low_floor
        controller._apply_rung_policy()  # same rung again: no new actuations
        assert len(controller.actuations) == applied

    def test_ladder_unwinds_to_nominal(self):
        controller, server = self._controller()
        controller._set_rung(LADDER.index("freeze_training"), reason="test")
        assert server.frozen_kinds == {"train"}
        assert controller.degraded_entries == 1
        controller._set_rung(0, reason="test")
        assert controller.degraded_exits == 1
        assert server.min_priority is None
        assert server.frozen_kinds == set()
        assert server.batcher.slo_latency_s == controller.base_batch_slo_s

    def test_sdc_quarantine_trips_breaker_at_threshold(self):
        from repro.serving.breaker import BreakerState

        controller, server = self._controller()
        rollup = ServingRollup(window_s=1.0)
        for _ in range(controller.config.sdc_quarantine_count):
            rollup.record_sdc(0.1, worker_id=0)
        rollup.record_sdc(0.1, worker_id=1)  # below threshold: untouched
        stats = rollup.window_stats(0.5, slo_latency_s=1e-5)
        controller._drive_sdc(server, stats, now=0.5)
        assert server.breakers[0].state is BreakerState.OPEN
        assert server.breakers[1].state is BreakerState.CLOSED
        quarantines = [
            a for a in controller.actuations if a["action"] == "sdc_quarantine"
        ]
        assert len(quarantines) == 1
        assert quarantines[0]["worker"] == 0
        # Already-open breakers are not re-tripped or re-logged.
        controller._drive_sdc(server, stats, now=0.6)
        assert len(controller.actuations) == len(quarantines)


# ---------------------------------------------------------------------------
# End-to-end
# ---------------------------------------------------------------------------
def _tiny_scenario(**overrides):
    import dataclasses

    base = smoke_scenario(seed=2)
    trace = dataclasses.replace(
        base.trace, duration_s=2e-4, base_rate_x=1.3, bursts=()
    )
    return dataclasses.replace(base, trace=trace, **overrides)


class TestFleetRuns:
    def test_uncontrolled_run_keeps_static_fleet(self):
        result = run_fleet_workload(_tiny_scenario(), controlled=False)
        assert result.controller is None
        assert result.pool.counts()["active"] == 2
        assert result.report.conservation_ok()

    def test_controlled_run_scales_and_conserves(self):
        result = run_fleet_workload(_tiny_scenario(), controlled=True)
        controller = result.controller
        assert result.report.conservation_ok()
        assert controller.stopped
        assert controller.scale_up_events > 0
        assert controller.degraded_entries == controller.degraded_exits == 0
        assert LADDER[controller.rung] == "nominal"
        counts = result.pool.counts()
        assert counts["warming"] == 0 and counts["draining"] == 0

    def test_replay_digest_is_stable(self):
        scenario = _tiny_scenario()
        a = run_fleet_workload(scenario, controlled=True)
        b = run_fleet_workload(scenario, controlled=True)
        assert fleet_digest(a) == fleet_digest(b)

    def test_storm_drives_one_degraded_episode(self):
        scenario = smoke_scenario(seed=11)
        plan = smoke_chaos_plan(scenario)
        result = run_fleet_workload(scenario, controlled=True, chaos_plan=plan)
        controller = result.controller
        assert controller.degraded_entries == 1
        assert controller.degraded_exits == 1
        assert LADDER[controller.rung] == "nominal"
        assert result.report.conservation_ok()
        decommissioned = result.pool.ids_in("decommissioned")
        assert decommissioned
        assert sorted(result.pool.checkpoint_digests) == decommissioned

    def test_window_p99_counts_sheds_as_inf(self):
        scenario = _tiny_scenario()
        result = run_fleet_workload(scenario, controlled=True)
        p99 = window_p99_latency_s(result.report, 0.0, scenario.trace.duration_s)
        assert p99 > 0

    def test_window_p99_empty_window(self):
        scenario = _tiny_scenario()
        result = run_fleet_workload(scenario, controlled=False)
        assert window_p99_latency_s(result.report, 10.0, 11.0) == 0.0


class TestFleetAudit:
    def test_audit_fleet_run_passes_clean_run(self):
        from repro.chaos.audit import audit_fleet_run

        scenario = _tiny_scenario()
        result = run_fleet_workload(scenario, controlled=True)
        replay = run_fleet_workload(scenario, controlled=True)
        audit = audit_fleet_run(result, replay=replay)
        assert audit.ok, audit.failed()
        names = [name for name, _, _ in audit.checks]
        assert "decommissions_checkpointed" in names
        assert "degraded_mode_converged" in names
        assert "actuations_logged" in names

    def test_audit_flags_missing_checkpoint(self):
        from repro.chaos.audit import audit_fleet_run

        result = run_fleet_workload(_tiny_scenario(), controlled=True)
        if not result.pool.ids_in("decommissioned"):
            pytest.skip("run decommissioned no workers")
        result.pool.checkpoint_digests.clear()
        audit = audit_fleet_run(result)
        assert any("decommissions_checkpointed" in f for f in audit.failed())
