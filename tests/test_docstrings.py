"""Meta-test: every public item in the library carries a docstring.

Production-quality enforcement of deliverable (e): doc comments on every
public module, class, function, and method.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

EXEMPT_METHOD_NAMES = {
    # Dataclass-generated / dunder machinery.
    "__init__", "__post_init__", "__repr__", "__eq__", "__hash__",
    "__len__", "__contains__",
}


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":  # importing it runs the CLI
            continue
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_") or meth_name in EXEMPT_METHOD_NAMES:
                    continue
                if not callable(meth) and not isinstance(meth, property):
                    continue
                target = meth.fget if isinstance(meth, property) else meth
                if not inspect.isfunction(target):
                    continue
                if target.__doc__ and target.__doc__.strip():
                    continue
                # Overrides inherit their base method's documentation.
                inherited = any(
                    (base_attr := getattr(base, meth_name, None)) is not None
                    and (
                        base_attr.fget.__doc__
                        if isinstance(base_attr, property) and base_attr.fget
                        else getattr(base_attr, "__doc__", None)
                    )
                    for base in obj.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{module.__name__}.{name}.{meth_name}")
    assert not undocumented, undocumented
