"""Tests for the WDM bus and channel plan."""

import numpy as np
import pytest

from repro.constants import MIN_WDM_SPACING, NM
from repro.devices.mrr import AddDropMRR
from repro.devices.waveguide import WDMBus, WDMChannelPlan
from repro.errors import ConfigError, DeviceError


class TestChannelPlan:
    def test_wavelengths_centered(self):
        plan = WDMChannelPlan(16)
        lams = plan.wavelengths
        assert np.mean(lams) == pytest.approx(plan.center_m)

    def test_spacing_uniform(self):
        plan = WDMChannelPlan(8)
        assert np.allclose(np.diff(plan.wavelengths), plan.spacing_m)

    def test_minimum_spacing_enforced(self):
        with pytest.raises(ConfigError):
            WDMChannelPlan(4, spacing_m=1.0 * NM)

    def test_paper_minimum_spacing_accepted(self):
        plan = WDMChannelPlan(4, spacing_m=MIN_WDM_SPACING)
        assert plan.spacing_m == MIN_WDM_SPACING

    def test_span(self):
        plan = WDMChannelPlan(16)
        assert plan.span_m == pytest.approx(15 * plan.spacing_m)

    def test_single_channel(self):
        plan = WDMChannelPlan(1)
        assert plan.wavelengths.shape == (1,)
        assert plan.span_m == 0.0

    def test_rejects_zero_channels(self):
        with pytest.raises(ConfigError):
            WDMChannelPlan(0)


class TestWDMBus:
    def test_insertion_loss_includes_propagation(self):
        bus = WDMBus(WDMChannelPlan(4), propagation_loss_db_per_cm=2.0,
                     length_m=1e-2, coupling_loss_db=1.0)
        assert bus.insertion_loss_db == pytest.approx(3.0)

    def test_transmission_below_unity(self):
        bus = WDMBus(WDMChannelPlan(4))
        assert 0 < bus.transmission < 1

    def test_propagate_scales_power(self):
        bus = WDMBus(WDMChannelPlan(4))
        p = np.full(4, 1e-3)
        out = bus.propagate(p)
        assert np.allclose(out, 1e-3 * bus.transmission)

    def test_propagate_rejects_wrong_channel_count(self):
        bus = WDMBus(WDMChannelPlan(4))
        with pytest.raises(DeviceError):
            bus.propagate(np.ones(5))

    def test_propagate_rejects_negative_power(self):
        bus = WDMBus(WDMChannelPlan(2))
        with pytest.raises(DeviceError):
            bus.propagate(np.array([1e-3, -1e-3]))

    def test_rejects_negative_losses(self):
        with pytest.raises(ConfigError):
            WDMBus(WDMChannelPlan(2), coupling_loss_db=-1.0)


class TestCrosstalk:
    def test_matrix_shape_and_diagonal(self):
        bus = WDMBus(WDMChannelPlan(8))
        x = bus.crosstalk_matrix()
        assert x.shape == (8, 8)
        assert np.allclose(np.diag(x), 1.0)

    def test_off_diagonal_suppressed(self):
        bus = WDMBus(WDMChannelPlan(8))
        x = bus.crosstalk_matrix()
        off = x - np.eye(8)
        assert np.all(off < 0.2)
        assert np.all(off >= 0)

    def test_adjacent_worse_than_distant(self):
        bus = WDMBus(WDMChannelPlan(8))
        x = bus.crosstalk_matrix()
        assert x[3, 4] > x[3, 7]

    def test_wider_spacing_reduces_crosstalk(self):
        tight = WDMBus(WDMChannelPlan(8, spacing_m=1.6 * NM))
        wide = WDMBus(WDMChannelPlan(8, spacing_m=3.2 * NM))
        assert wide.worst_case_crosstalk_db() < tight.worst_case_crosstalk_db()

    def test_matrix_cached(self):
        bus = WDMBus(WDMChannelPlan(4))
        assert bus.crosstalk_matrix() is bus.crosstalk_matrix()

    def test_worst_case_is_negative_db(self):
        bus = WDMBus(WDMChannelPlan(16))
        assert bus.worst_case_crosstalk_db() < 0

    def test_single_channel_has_no_crosstalk(self):
        bus = WDMBus(WDMChannelPlan(1))
        assert bus.worst_case_crosstalk_db() == -np.inf

    def test_custom_reference_ring(self):
        bus = WDMBus(WDMChannelPlan(4))
        high_q = AddDropMRR(input_coupling=0.99, drop_coupling=0.99)
        x_high_q = bus.crosstalk_matrix(high_q)
        default = WDMBus(WDMChannelPlan(4)).crosstalk_matrix()
        # Sharper rings leak less into neighbours.
        assert x_high_q[0, 1] < default[0, 1]
