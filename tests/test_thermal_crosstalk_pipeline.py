"""Tests for the thermal-crosstalk resolution model and PE pipelining."""

import numpy as np
import pytest

from repro import TridentAccelerator
from repro.devices.thermal_crosstalk import (
    ThermalCrosstalkModel,
    thermal_resolution_sweep,
)
from repro.errors import ConfigError, MappingError


class TestCouplingMatrix:
    def test_diagonal_unity(self):
        m = ThermalCrosstalkModel(n_rings=8).coupling_matrix()
        assert np.allclose(np.diag(m), 1.0)

    def test_symmetric(self):
        m = ThermalCrosstalkModel(n_rings=8).coupling_matrix()
        assert np.allclose(m, m.T)

    def test_adjacent_coupling_as_specified(self):
        model = ThermalCrosstalkModel(n_rings=8, adjacent_coupling=0.01)
        m = model.coupling_matrix()
        assert m[3, 4] == pytest.approx(0.01)

    def test_decays_with_distance(self):
        m = ThermalCrosstalkModel(n_rings=8).coupling_matrix()
        assert m[0, 1] > m[0, 2] > m[0, 3]


class TestWeightErrors:
    def test_zero_coupling_zero_error(self):
        model = ThermalCrosstalkModel(n_rings=8, adjacent_coupling=0.0)
        errors = model.weight_errors(np.random.default_rng(0).uniform(0, 1, 8))
        assert np.allclose(errors, 0.0)

    def test_all_on_is_worst_case(self):
        model = ThermalCrosstalkModel(n_rings=8, adjacent_coupling=0.01)
        rng = np.random.default_rng(1)
        worst = model.worst_case_error()
        for _ in range(50):
            errors = model.weight_errors(rng.uniform(0, 1, 8))
            assert errors.max() <= worst + 1e-12

    def test_errors_nonnegative_for_nonneg_kernel(self):
        model = ThermalCrosstalkModel(n_rings=8)
        errors = model.weight_errors(np.ones(8))
        assert np.all(errors >= 0)

    def test_input_validation(self):
        model = ThermalCrosstalkModel(n_rings=4)
        with pytest.raises(ConfigError):
            model.weight_errors(np.ones(5))
        with pytest.raises(ConfigError):
            model.weight_errors(np.array([0.5, -0.1, 0.2, 0.3]))


class TestResolution:
    def test_default_matches_paper_6_bits(self):
        """The Sec. II-B claim: thermal banks resolve 6 bits."""
        assert ThermalCrosstalkModel().usable_bits() == 6

    def test_zero_coupling_unbounded(self):
        assert ThermalCrosstalkModel(adjacent_coupling=0.0).usable_bits() == 16

    def test_bits_decrease_with_coupling(self):
        rows = thermal_resolution_sweep()
        bits = [r["usable_bits"] for r in rows]
        assert bits == sorted(bits, reverse=True)

    def test_sweep_includes_6bit_operating_point(self):
        rows = {r["adjacent_coupling"]: r["usable_bits"] for r in thermal_resolution_sweep()}
        assert rows[0.0035] == 6

    def test_monte_carlo_below_worst_case(self):
        model = ThermalCrosstalkModel()
        assert model.monte_carlo_error() <= model.worst_case_error()

    def test_validation(self):
        with pytest.raises(ConfigError):
            ThermalCrosstalkModel(n_rings=0)
        with pytest.raises(ConfigError):
            ThermalCrosstalkModel(adjacent_coupling=1.5)
        with pytest.raises(ConfigError):
            ThermalCrosstalkModel().monte_carlo_error(n_patterns=0)


class TestPipelining:
    def test_latency_is_nanoseconds_for_small_mlp(self):
        acc = TridentAccelerator()
        acc.map_mlp([16, 16, 4])
        # Two single-tile layers: 2 symbol periods at 346 MHz ~ 5.8 ns.
        assert acc.pipeline_latency_s() == pytest.approx(2 / acc.config.symbol_rate_hz)

    def test_tiled_layer_adds_reduction_stages(self):
        acc = TridentAccelerator()
        acc.map_mlp([40, 24, 4])
        # Layer 0: ceil(40/16)=3 reduction tiles; layer 1: ceil(24/16)=2.
        assert acc.pipeline_latency_s() == pytest.approx(5 / acc.config.symbol_rate_hz)

    def test_throughput_set_by_slowest_stage(self):
        acc = TridentAccelerator()
        acc.map_mlp([40, 24, 4])
        assert acc.pipeline_throughput() == pytest.approx(acc.config.symbol_rate_hz / 3)

    def test_requires_mapping(self):
        acc = TridentAccelerator()
        with pytest.raises(MappingError):
            acc.pipeline_latency_s()
        with pytest.raises(MappingError):
            acc.pipeline_throughput()

    def test_pipeline_faster_than_serial_estimate(self):
        acc = TridentAccelerator()
        acc.map_mlp([16, 16, 4])
        import numpy as np

        rng = np.random.default_rng(0)
        acc.set_weights([rng.uniform(-1, 1, (16, 16)), rng.uniform(-1, 1, (4, 16))])
        acc.forward(rng.uniform(-1, 1, 16))
        assert acc.pipeline_latency_s() < acc.time_estimate_s()
