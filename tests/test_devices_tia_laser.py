"""Tests for the TIA, laser array, and E/O modulator."""

import numpy as np
import pytest

from repro.devices.laser import EOModulator, LaserArray, LaserSource
from repro.devices.tia import TransimpedanceAmplifier
from repro.devices.waveguide import WDMChannelPlan
from repro.errors import ConfigError, DeviceError


class TestTIA:
    def test_amplify_applies_transimpedance_and_gain(self):
        tia = TransimpedanceAmplifier(transimpedance_ohms=1000.0, gain=0.5)
        assert float(tia.amplify(1e-3)) == pytest.approx(0.5)

    def test_saturation_clamps(self):
        tia = TransimpedanceAmplifier(saturation_v=1.0)
        assert float(tia.amplify(1.0)) == 1.0
        assert float(tia.amplify(-1.0)) == -1.0

    def test_set_gain_for_training(self):
        tia = TransimpedanceAmplifier()
        tia.set_gain(0.34)
        assert float(tia.amplify_normalized(2.0)) == pytest.approx(0.68)

    def test_zero_gain_kills_signal(self):
        tia = TransimpedanceAmplifier()
        tia.set_gain(0.0)
        assert float(tia.amplify_normalized(5.0)) == 0.0

    def test_gain_bounds_enforced(self):
        tia = TransimpedanceAmplifier(max_gain=2.0)
        with pytest.raises(DeviceError):
            tia.set_gain(3.0)
        with pytest.raises(DeviceError):
            tia.set_gain(-0.1)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            TransimpedanceAmplifier(transimpedance_ohms=0.0)
        with pytest.raises(ConfigError):
            TransimpedanceAmplifier(gain=10.0, max_gain=1.0)

    def test_amplify_normalized_vectorized(self):
        tia = TransimpedanceAmplifier()
        tia.set_gain(2.0)
        out = tia.amplify_normalized(np.array([1.0, -0.5]))
        assert np.allclose(out, [2.0, -1.0])


class TestEOModulator:
    def test_encode_preserves_sign(self):
        mod = EOModulator()
        out = mod.encode(np.array([0.5, -0.5]))
        assert out[0] > 0 > out[1]

    def test_encode_magnitude_scaled_by_insertion_loss(self):
        mod = EOModulator(insertion_loss_db=3.0103)
        assert abs(float(mod.encode(1.0))) == pytest.approx(0.5, rel=1e-3)

    def test_extinction_floor(self):
        mod = EOModulator(extinction_ratio_db=20.0)
        assert abs(float(mod.encode(0.0))) <= mod.floor * mod.transmission + 1e-12

    def test_rejects_overrange(self):
        with pytest.raises(DeviceError):
            EOModulator().encode(1.5)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            EOModulator(extinction_ratio_db=0.0)


class TestLaserSource:
    def test_defaults_valid(self):
        src = LaserSource()
        assert src.power_w > 0

    def test_rejects_bad_wavelength(self):
        with pytest.raises(ConfigError):
            LaserSource(wavelength_m=0.0)

    def test_rejects_bad_power(self):
        with pytest.raises(ConfigError):
            LaserSource(power_w=0.0)


class TestLaserArray:
    def test_one_source_per_channel(self):
        arr = LaserArray(WDMChannelPlan(16))
        assert len(arr.sources) == 16

    def test_sources_match_plan_wavelengths(self):
        plan = WDMChannelPlan(4)
        arr = LaserArray(plan)
        assert [s.wavelength_m for s in arr.sources] == pytest.approx(list(plan.wavelengths))

    def test_total_electrical_power(self):
        arr = LaserArray(WDMChannelPlan(16))
        # Table III: 0.032 mW per E/O laser.
        assert arr.total_electrical_power_w == pytest.approx(16 * 0.032e-3)

    def test_encode_vector_shape_checked(self):
        arr = LaserArray(WDMChannelPlan(4))
        with pytest.raises(DeviceError):
            arr.encode_vector(np.zeros(5))

    def test_encode_vector_roundtrip_signs(self):
        arr = LaserArray(WDMChannelPlan(3))
        out = arr.encode_vector(np.array([0.5, -0.5, 0.0]))
        assert out[0] > 0 > out[1]
