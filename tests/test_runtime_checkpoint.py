"""Checkpoint codec, atomic store, and accelerator state round-trips."""

import json

import numpy as np
import pytest

from repro import TridentAccelerator, TridentConfig
from repro.devices.program_verify import ProgramVerifyConfig
from repro.errors import CheckpointError
from repro.nn.datasets import make_blobs
from repro.runtime import (
    SCHEMA_VERSION,
    CheckpointStore,
    decode_state,
    describe_checkpoint,
    encode_state,
    load_checkpoint,
    save_checkpoint,
    state_digest,
)
from repro.training.insitu import InSituTrainer

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


def _built_acc(seed=0, dims=(6, 8, 3), spare_rows=2):
    acc = TridentAccelerator(
        config=TridentConfig(
            bank_rows=8, bank_cols=8, n_pes=4, spare_rows=spare_rows,
            convergence_floor=0.0,
        ),
        seed=seed,
        program_verify=ProgramVerifyConfig(),
    )
    acc.map_mlp(list(dims))
    rng = np.random.default_rng(seed + 100)
    acc.set_weights(
        [
            rng.normal(0.0, 0.4, (dims[i + 1], dims[i]))
            for i in range(len(dims) - 1)
        ]
    )
    return acc


class TestCodec:
    def test_round_trip_preserves_bits(self):
        payload = {
            "ints": np.arange(12, dtype=np.int64).reshape(3, 4),
            "floats": np.array([0.1, -1e-300, np.nan, np.inf]),
            "bools": np.array([True, False]),
            "scalar": 0.1 + 0.2,
            "nested": {"list": [1, "two", None, 3.5], "empty": {}},
        }
        decoded = decode_state(encode_state(payload))
        assert np.array_equal(
            decoded["ints"], payload["ints"]
        ) and decoded["ints"].dtype == np.int64
        # Bit-level float equality, NaN included.
        assert (
            payload["floats"].tobytes() == decoded["floats"].tobytes()
        )
        assert decoded["bools"].dtype == bool
        assert decoded["scalar"] == payload["scalar"]
        assert decoded["nested"] == payload["nested"]

    def test_encoded_form_is_json_serializable(self):
        encoded = encode_state({"a": np.eye(3), "b": [np.float64(2.5)]})
        text = json.dumps(encoded)
        assert np.array_equal(decode_state(json.loads(text))["a"], np.eye(3))

    def test_unsupported_type_rejected(self):
        with pytest.raises(CheckpointError):
            encode_state({"bad": object()})
        with pytest.raises(CheckpointError):
            encode_state({1: "non-string key"})

    def test_digest_is_stable_and_content_sensitive(self):
        a = encode_state({"x": np.arange(4)})
        b = encode_state({"x": np.arange(4)})
        c = encode_state({"x": np.arange(5)})
        assert state_digest(a) == state_digest(b)
        assert state_digest(a) != state_digest(c)


class TestCheckpointFile:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        payload = {"step": 7, "arr": np.linspace(0, 1, 5)}
        save_checkpoint(path, payload, kind="unit")
        loaded = load_checkpoint(path, expect_kind="unit")
        assert loaded["step"] == 7
        assert np.array_equal(loaded["arr"], payload["arr"])

    def test_tampered_file_rejected(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        save_checkpoint(path, {"value": 1.25}, kind="unit")
        doc = json.loads(path.read_text())
        doc["payload"]["value"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="hash"):
            load_checkpoint(path, expect_kind="unit")

    def test_wrong_kind_and_garbage_rejected(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        save_checkpoint(path, {"v": 1}, kind="unit")
        with pytest.raises(CheckpointError, match="kind"):
            load_checkpoint(path, expect_kind="other")
        garbage = tmp_path / "garbage.ckpt"
        garbage.write_text("not json{")
        with pytest.raises(CheckpointError):
            load_checkpoint(garbage, expect_kind="unit")
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "missing.ckpt", expect_kind="unit")

    def test_describe_never_raises(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        save_checkpoint(path, {"v": 1}, kind="unit")
        info = describe_checkpoint(path)
        assert info["valid"] and info["kind"] == "unit"
        assert info["schema"] == SCHEMA_VERSION
        broken = tmp_path / "broken.ckpt"
        broken.write_text("{}")
        assert describe_checkpoint(broken)["valid"] is False
        assert describe_checkpoint(tmp_path / "nope.ckpt")["valid"] is False


class TestCheckpointStore:
    def test_keep_last_prunes_old_steps(self, tmp_path):
        store = CheckpointStore(tmp_path, keep_last=2)
        for step in (1, 2, 3, 4):
            store.save(step, {"step": step})
        assert store.steps() == [3, 4]
        step, payload = store.latest()
        assert step == 4 and payload["step"] == 4

    def test_latest_skips_corrupt_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep_last=5)
        store.save(1, {"step": 1})
        store.save(2, {"step": 2})
        store.path_for(2).write_text("corrupted!")
        with pytest.warns(UserWarning, match="skipping"):
            step, payload = store.latest()
        assert step == 1 and payload["step"] == 1

    def test_empty_store_has_no_latest(self, tmp_path):
        assert CheckpointStore(tmp_path).latest() is None


class TestAcceleratorStateDict:
    def test_forward_bit_identical_after_restore(self):
        acc = _built_acc(seed=3)
        rng = np.random.default_rng(0)
        acc.forward(rng.normal(0, 0.5, 6))  # advance RNG + wear counters
        state = acc.state_dict()
        # Restore into a *differently seeded* twin: every divergence source
        # must be overwritten by the snapshot.
        twin = TridentAccelerator(
            config=TridentConfig(
                bank_rows=8, bank_cols=8, n_pes=4, spare_rows=2,
                convergence_floor=0.0,
            ),
            seed=999,
            program_verify=ProgramVerifyConfig(),
        )
        twin.load_state_dict(state)
        for _ in range(4):
            x = rng.normal(0, 0.5, 6)
            assert np.array_equal(acc.forward(x), twin.forward(x))
        assert acc.counters.as_dict() == twin.counters.as_dict()

    def test_train_step_bit_identical_after_restore(self):
        acc = _built_acc(seed=5)
        state = acc.state_dict()
        twin = _built_acc(seed=77)
        twin.load_state_dict(state)
        data = make_blobs(n_samples=32, n_features=6, n_classes=3, seed=2)
        a = InSituTrainer(acc, lr=0.05)
        b = InSituTrainer(twin, lr=0.05)
        for start in (0, 8):
            xb, yb = data.x[start : start + 8], data.y[start : start + 8]
            assert a.train_step(xb, yb) == b.train_step(xb, yb)
        assert acc.counters.as_dict() == twin.counters.as_dict()

    def test_survives_disk_round_trip(self, tmp_path):
        acc = _built_acc(seed=9)
        path = tmp_path / "acc.ckpt"
        save_checkpoint(path, {"accelerator": acc.state_dict()}, kind="unit")
        twin = _built_acc(seed=11)
        twin.load_state_dict(
            load_checkpoint(path, expect_kind="unit")["accelerator"]
        )
        x = np.random.default_rng(1).normal(0, 0.5, 6)
        assert np.array_equal(acc.forward(x), twin.forward(x))

    def test_fault_and_remap_state_round_trips(self):
        acc = _built_acc(seed=13)
        acc.inject_stuck_faults(0.1, stuck_level=254)
        acc.pes[0].bank.remap_row(1)
        # Remap leaves the bank needing a reprogram; snapshot mid-repair.
        state = acc.state_dict()
        twin = _built_acc(seed=14)
        twin.load_state_dict(state)
        src, dst = acc.pes[0].bank, twin.pes[0].bank
        assert np.array_equal(src._stuck_mask, dst._stuck_mask)
        assert src.remapped_rows == dst.remapped_rows
        assert src.free_spare_rows == dst.free_spare_rows
        assert dst._needs_reprogram

    def test_geometry_mismatch_rejected(self):
        acc = _built_acc(seed=1)
        other = TridentAccelerator(
            config=TridentConfig(
                bank_rows=10, bank_cols=10, n_pes=4, spare_rows=2
            ),
            seed=1,
            program_verify=ProgramVerifyConfig(),
        )
        with pytest.raises(CheckpointError, match="bank_rows"):
            other.load_state_dict(acc.state_dict())


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestStateDictProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        fraction=st.floats(min_value=0.0, max_value=0.2),
        steps=st.integers(min_value=0, max_value=2),
    )
    def test_round_trip_is_bit_identical(self, seed, fraction, steps):
        """state_dict -> load_state_dict preserves every observable:
        physical levels, spare/remap state, counters, and the next
        forward/train_step outputs (property test over random runs)."""
        acc = _built_acc(seed=seed)
        if fraction > 0:
            acc.inject_stuck_faults(fraction, stuck_level=254)
            acc.set_weights(
                [layer.weights.copy() for layer in acc.layers]
            )
        data = make_blobs(n_samples=24, n_features=6, n_classes=3, seed=4)
        trainer = InSituTrainer(acc, lr=0.05)
        for _ in range(steps):
            trainer.train_step(data.x[:8], data.y[:8])

        state = acc.state_dict()
        twin = _built_acc(seed=seed + 1)
        twin.load_state_dict(state)

        for pe_a, pe_b in zip(acc.pes, twin.pes):
            assert np.array_equal(
                pe_a.bank.physical_levels, pe_b.bank.physical_levels
            )
            assert pe_a.bank.remapped_rows == pe_b.bank.remapped_rows
            assert pe_a.bank.free_spare_rows == pe_b.bank.free_spare_rows
        assert acc.counters.as_dict() == twin.counters.as_dict()

        x = np.random.default_rng(seed ^ 0x5EED).normal(0, 0.5, 6)
        assert np.array_equal(acc.forward(x), twin.forward(x))
        t2 = InSituTrainer(twin, lr=0.05)
        assert trainer.train_step(data.x[8:16], data.y[8:16]) == t2.train_step(
            data.x[8:16], data.y[8:16]
        )
