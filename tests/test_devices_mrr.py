"""Tests for the microring resonator transfer functions."""

import numpy as np
import pytest

from repro.constants import C_BAND_CENTER, NM
from repro.devices.mrr import AddDropMRR, AllPassMRR, RingGeometry
from repro.errors import DeviceError


@pytest.fixture
def geometry():
    return RingGeometry()


@pytest.fixture
def ring():
    return AddDropMRR()


class TestRingGeometry:
    def test_circumference(self, geometry):
        assert geometry.circumference_m == pytest.approx(2 * np.pi * geometry.radius_m)

    def test_fsr_formula(self, geometry):
        fsr = geometry.free_spectral_range()
        expected = C_BAND_CENTER**2 / (geometry.group_index * geometry.circumference_m)
        assert fsr == pytest.approx(expected)

    def test_fsr_scale_is_tens_of_nm_for_5um_ring(self, geometry):
        assert 5 * NM < geometry.free_spectral_range() < 50 * NM

    def test_nearest_resonance_satisfies_condition(self, geometry):
        lam = geometry.nearest_resonance()
        m = geometry.effective_index * geometry.circumference_m / lam
        assert m == pytest.approx(round(m))

    def test_nearest_resonance_close_to_target(self, geometry):
        lam = geometry.nearest_resonance(C_BAND_CENTER)
        assert abs(lam - C_BAND_CENTER) < geometry.free_spectral_range()

    def test_round_trip_phase_vectorized(self, geometry):
        lams = np.linspace(1.5e-6, 1.6e-6, 7)
        phases = geometry.round_trip_phase(lams)
        assert phases.shape == lams.shape
        assert np.all(np.diff(phases) < 0)  # phase decreases with wavelength

    def test_rejects_bad_geometry(self):
        with pytest.raises(DeviceError):
            RingGeometry(radius_m=0.0)
        with pytest.raises(DeviceError):
            RingGeometry(effective_index=-1.0)

    def test_rejects_bad_wavelength(self, geometry):
        with pytest.raises(DeviceError):
            geometry.round_trip_phase(0.0)


class TestAllPassMRR:
    def test_transmission_bounded(self):
        ring = AllPassMRR()
        lams = np.linspace(1.54e-6, 1.56e-6, 2001)
        t = ring.through(lams)
        assert np.all(t >= 0)
        assert np.all(t <= 1 + 1e-12)

    def test_dip_at_resonance(self):
        ring = AllPassMRR()
        res = ring.geometry.nearest_resonance()
        off = res + 0.5 * ring.geometry.free_spectral_range()
        assert ring.through(res) < ring.through(off)

    def test_extinction_on_resonance_formula(self):
        ring = AllPassMRR()
        res = ring.geometry.nearest_resonance()
        assert float(ring.through(res)) == pytest.approx(
            ring.extinction_on_resonance, abs=1e-6
        )

    def test_rejects_bad_coupling(self):
        with pytest.raises(DeviceError):
            AllPassMRR(self_coupling=0.0)
        with pytest.raises(DeviceError):
            AllPassMRR(self_coupling=1.2)


class TestAddDropMRR:
    def test_ports_bounded(self, ring):
        lams = np.linspace(1.54e-6, 1.56e-6, 2001)
        assert np.all(ring.through(lams) >= 0)
        assert np.all(ring.through(lams) <= 1 + 1e-12)
        assert np.all(ring.drop(lams) >= 0)
        assert np.all(ring.drop(lams) <= 1 + 1e-12)

    def test_energy_conservation(self, ring):
        """Through + drop never exceeds unity (passive device)."""
        lams = np.linspace(1.53e-6, 1.57e-6, 4001)
        total = ring.through(lams) + ring.drop(lams)
        assert np.all(total <= 1 + 1e-9)

    def test_lossless_symmetric_ring_conserves_energy_exactly(self):
        ring = AddDropMRR(ring_loss=1.0, extra_loss=1.0)
        lams = np.linspace(1.54e-6, 1.56e-6, 501)
        total = ring.through(lams) + ring.drop(lams)
        assert np.allclose(total, 1.0, atol=1e-12)

    def test_drop_peaks_at_resonance(self, ring):
        res = ring.geometry.nearest_resonance()
        off = res + 0.5 * ring.geometry.free_spectral_range()
        assert ring.drop(res) > ring.drop(off)
        assert ring.through(res) < ring.through(off)

    def test_on_resonance_formulas_match_sweep(self, ring):
        res = ring.geometry.nearest_resonance()
        assert float(ring.drop(res)) == pytest.approx(ring.drop_on_resonance(), abs=1e-6)
        assert float(ring.through(res)) == pytest.approx(
            ring.through_on_resonance(), abs=1e-6
        )

    def test_gst_loss_reduces_drop_and_raises_through(self, ring):
        lossy = ring.with_extra_loss(0.7)
        assert lossy.drop_on_resonance() < ring.drop_on_resonance()
        assert lossy.through_on_resonance() > ring.through_on_resonance()

    def test_differential_swings_negative_with_loss(self, ring):
        assert ring.differential_on_resonance() > 0
        assert ring.with_extra_loss(0.3).differential_on_resonance() < 0

    def test_q_factor_realistic_for_silicon_rings(self, ring):
        q = ring.q_factor()
        assert 1e3 < q < 1e6

    def test_fwhm_positive_and_subnanometer_scale(self, ring):
        assert 0 < ring.fwhm() < 5 * NM

    def test_with_extra_loss_preserves_geometry(self, ring):
        other = ring.with_extra_loss(0.9)
        assert other.geometry == ring.geometry
        assert other.extra_loss == 0.9

    def test_rejects_invalid_extra_loss(self, ring):
        with pytest.raises(DeviceError):
            ring.with_extra_loss(0.0)
        with pytest.raises(DeviceError):
            ring.with_extra_loss(1.0001)
