"""Runtime fault management: detection, repair ladder, campaign engine."""

import warnings

import numpy as np
import pytest

from repro import TridentAccelerator, TridentConfig
from repro.arch.weight_bank import WeightBank
from repro.cli import main
from repro.devices.program_verify import ProgramVerifyConfig, ProgramVerifyWriter
from repro.errors import (
    ConfigError,
    FaultError,
    ProgrammingError,
    RepairError,
    WriteConvergenceWarning,
)
from repro.eval.export import export_fault_campaign
from repro.faults import (
    BankFaultMap,
    CampaignConfig,
    FaultDetector,
    FaultManager,
    RepairConfig,
    RepairPolicy,
    run_campaign,
)


def _verified_acc(seed=0, spare_rows=4, n_pes=44, floor=0.0):
    acc = TridentAccelerator(
        config=TridentConfig(
            n_pes=n_pes, spare_rows=spare_rows, convergence_floor=floor
        ),
        seed=seed,
        program_verify=ProgramVerifyConfig(),
    )
    acc.map_mlp([10, 14, 3])
    return acc


class TestErrors:
    def test_fault_error_aliases_programming_error(self):
        # Deprecation compatibility: old except-sites keep working.
        assert issubclass(FaultError, ProgrammingError)
        bank = WeightBank()
        with pytest.raises(FaultError):
            bank.inject_stuck_faults(1.5, np.random.default_rng(0))
        with pytest.raises(ProgrammingError):
            bank.inject_stuck_faults(-0.1, np.random.default_rng(0))
        with pytest.raises(FaultError):
            bank.inject_stuck_faults(0.1, np.random.default_rng(0), stuck_level=999)

    def test_repair_error_for_exhausted_spares(self):
        bank = WeightBank(spare_rows=0)
        with pytest.raises(RepairError):
            bank.remap_row(0)


class TestConvergenceReadback:
    def test_unconverged_fraction_zero_without_verify(self):
        bank = WeightBank()
        bank.program(np.full((4, 4), 0.5))
        assert bank.unconverged_fraction == 0.0
        assert bank.last_converged is None

    def test_converged_mask_stored(self, rng):
        bank = WeightBank()
        writer = ProgramVerifyWriter(ProgramVerifyConfig(), rng=rng)
        _, result = bank.program_verified(rng.uniform(-1, 1, (8, 8)), writer)
        assert bank.last_converged is not None
        assert bank.last_converged.shape == (8, 8)
        assert bank.unconverged_fraction == pytest.approx(
            1.0 - result.convergence_rate
        )

    def test_stuck_cells_never_converge(self, rng):
        bank = WeightBank()
        bank.inject_stuck_faults(1.0, rng, stuck_level=254)
        writer = ProgramVerifyWriter(ProgramVerifyConfig(), rng=rng)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", WriteConvergenceWarning)
            _, result = bank.program_verified(np.full((6, 6), -0.9), writer)
        assert result.convergence_rate == 0.0
        # Frozen cells burn the full pulse budget — the wear signal.
        assert np.all(result.pulses == writer.config.max_iterations)
        assert bank.unconverged_fraction == 1.0

    def test_warning_below_floor(self, rng):
        bank = WeightBank(convergence_floor=0.99)
        bank.inject_stuck_faults(0.5, rng, stuck_level=254)
        writer = ProgramVerifyWriter(ProgramVerifyConfig(), rng=rng)
        with pytest.warns(WriteConvergenceWarning):
            bank.program_verified(np.full((8, 8), -0.5), writer)

    def test_no_warning_at_floor_zero(self, rng):
        bank = WeightBank(convergence_floor=0.0)
        bank.inject_stuck_faults(0.5, rng, stuck_level=254)
        writer = ProgramVerifyWriter(ProgramVerifyConfig(), rng=rng)
        with warnings.catch_warnings():
            warnings.simplefilter("error", WriteConvergenceWarning)
            bank.program_verified(np.full((8, 8), -0.5), writer)


class TestSpareRemap:
    def test_remap_moves_logical_row(self, rng):
        bank = WeightBank(rows=4, cols=4, spare_rows=2)
        w = rng.uniform(-1, 1, (4, 4))
        bank.program(w)
        new_phys = bank.remap_row(1)
        assert new_phys == 4  # first spare
        assert bank.remapped_rows == {1: 4}
        assert 4 not in bank.free_spare_rows

    def test_mvm_refused_until_reprogram(self, rng):
        bank = WeightBank(rows=4, cols=4, spare_rows=1)
        bank.program(rng.uniform(-1, 1, (4, 4)))
        bank.remap_row(0)
        with pytest.raises(ProgrammingError):
            bank.matvec(np.zeros(4))
        bank.program(rng.uniform(-1, 1, (4, 4)))
        bank.matvec(np.zeros(4))  # streams again

    def test_remap_routes_around_stuck_row(self, rng):
        bank = WeightBank(rows=4, cols=4, spare_rows=2)
        # Stick the whole of physical row 2, then remap logical row 2.
        bank._stuck_mask[2, :] = True
        bank._stuck_levels[2, :] = 0
        w = rng.uniform(-0.5, 0.5, (4, 4))
        bank.program(w)
        assert not np.allclose(bank.logical_weights[2], w[2], atol=bank.weight_step)
        bank.remap_row(2)
        bank.program(w)
        assert np.allclose(bank.logical_weights[2], w[2], atol=bank.weight_step)

    def test_specific_spare_must_be_free(self):
        bank = WeightBank(rows=4, cols=4, spare_rows=2)
        bank.remap_row(0, spare_physical=5)
        with pytest.raises(RepairError):
            bank.remap_row(1, spare_physical=5)
        with pytest.raises(FaultError):
            bank.remap_row(99)

    def test_row_stuck_counts_follow_the_map(self, rng):
        bank = WeightBank(rows=4, cols=4, spare_rows=1)
        bank._stuck_mask[0, :2] = True
        assert list(bank.row_stuck_counts()) == [2, 0, 0, 0]
        bank.program(rng.uniform(-1, 1, (4, 4)))
        bank.remap_row(0)
        assert list(bank.row_stuck_counts()) == [0, 0, 0, 0]


class TestSelftest:
    def test_selftest_flags_stuck_cells(self, rng):
        bank = WeightBank(rows=4, cols=4, spare_rows=2)
        bank.inject_stuck_faults(0.3, rng, stuck_level=254)
        writer = ProgramVerifyWriter(ProgramVerifyConfig(), rng=rng)
        fault_map = BankFaultMap(bank.physical_rows, bank.cols)
        for result in bank.selftest(writer):
            fault_map.observe_physical(result)
        # Level 254 sits far from both test patterns: every stuck cell
        # collects two strikes and is flagged; healthy cells almost
        # surely converge at least once.
        assert np.array_equal(fault_map.faulty, bank._stuck_mask)

    def test_selftest_charges_accounting_and_blocks_mvm(self, rng):
        bank = WeightBank(rows=4, cols=4, spare_rows=2)
        bank.program(rng.uniform(-1, 1, (4, 4)))
        before = bank.stats.write_energy_j
        writer = ProgramVerifyWriter(ProgramVerifyConfig(), rng=rng)
        bank.selftest(writer)
        assert bank.stats.write_energy_j > before  # BIST is not free
        with pytest.raises(ProgrammingError):
            bank.matvec(np.zeros(4))

    def test_selftest_validates_levels(self, rng):
        bank = WeightBank()
        writer = ProgramVerifyWriter(ProgramVerifyConfig(), rng=rng)
        with pytest.raises(FaultError):
            bank.selftest(writer, test_levels=(300,))
        with pytest.raises(FaultError):
            bank.selftest(writer, test_levels=())


class TestDetector:
    def test_strikes_require_persistence(self):
        fault_map = BankFaultMap(4, 4, strike_threshold=2)

        class R:
            def __init__(self, conv):
                self.converged = conv

        class B:
            active_row_map = np.arange(4)

        miss = np.ones((4, 4), dtype=bool)
        miss[0, 0] = False
        fault_map.observe(B(), R(miss))
        assert not fault_map.faulty.any()  # one strike is not a fault
        fault_map.observe(B(), R(miss))
        assert fault_map.faulty[0, 0] and fault_map.faulty.sum() == 1
        # A converged write clears the record — transient, not worn.
        fault_map.observe(B(), R(np.ones((4, 4), dtype=bool)))
        assert not fault_map.faulty.any() and not fault_map.strikes.any()

    def test_detector_attaches_to_accelerator_writes(self, rng):
        acc = _verified_acc()
        detector = FaultDetector().attach(acc)
        acc.inject_stuck_faults(0.1, stuck_level=254)
        acc.set_weights(
            [rng.uniform(-1, 1, (14, 10)), rng.uniform(-1, 1, (3, 14))]
        )
        assert set(detector.maps) == {0, 1}
        assert all(m.writes_observed == 1 for m in detector.maps.values())
        # One write = one strike: nothing flagged yet at threshold 2.
        assert detector.total_flagged == 0
        acc.set_weights(
            [rng.uniform(-1, 1, (14, 10)), rng.uniform(-1, 1, (3, 14))]
        )
        assert detector.total_flagged > 0

    def test_check_drift(self):
        detector = FaultDetector()
        fresh = detector.check_drift(age_s=0.0, temperature_k=358.15)
        assert not fresh.needs_refresh
        old = detector.check_drift(age_s=3.15e8, temperature_k=400.0)
        assert old.needs_refresh
        with pytest.raises(ConfigError):
            detector.check_drift(age_s=-1.0)


class TestRepairLadder:
    def test_policy_parse_and_tiers(self):
        assert RepairPolicy.parse("spare") is RepairPolicy.SPARE
        assert RepairPolicy.parse(RepairPolicy.NONE) is RepairPolicy.NONE
        assert (
            RepairPolicy.NONE.tier
            < RepairPolicy.RETRY.tier
            < RepairPolicy.SPARE.tier
            < RepairPolicy.REMAP.tier
        )
        with pytest.raises(ConfigError):
            RepairPolicy.parse("nuke-from-orbit")

    def test_manager_requires_verify(self):
        acc = TridentAccelerator()
        acc.map_mlp([10, 14, 3])
        with pytest.raises(ConfigError):
            FaultManager(acc, config=RepairConfig(policy="spare"))
        FaultManager(acc, config=RepairConfig(policy="none"))  # fine

    def test_sdc_escalations_checkpoint_roundtrip(self, rng):
        acc = _verified_acc(seed=3)
        manager = FaultManager(acc, config=RepairConfig(policy="retry"))
        manager.deploy(
            [rng.uniform(-1, 1, (14, 10)), rng.uniform(-1, 1, (3, 14))]
        )
        manager.note_sdc()
        manager.note_sdc()
        assert manager.log.sdc_escalations == 2
        state = manager.state_dict()
        assert state["log"]["sdc_escalations"] == 2
        restored = FaultManager(acc, config=RepairConfig(policy="retry"))
        restored.load_state_dict(state)
        assert restored.log.sdc_escalations == 2
        # Pre-integrity snapshots lack the key and must still load.
        del state["log"]["sdc_escalations"]
        restored.load_state_dict(state)
        assert restored.log.sdc_escalations == 0

    def test_retry_cannot_fix_stuck_cells(self, rng):
        acc = _verified_acc(seed=3)
        acc.inject_stuck_faults(0.1, stuck_level=254)
        manager = FaultManager(acc, config=RepairConfig(policy="retry"))
        weights = [rng.uniform(-1, 1, (14, 10)), rng.uniform(-1, 1, (3, 14))]
        log = manager.deploy(weights)
        assert log.retries > 0
        assert log.row_remaps == 0 and log.migrations == 0
        assert log.tiles_unrepaired > 0  # degraded, gracefully

    def test_spare_policy_repairs_and_recovers_weights(self, rng):
        acc = _verified_acc(seed=3, spare_rows=8)
        acc.inject_stuck_faults(0.05, stuck_level=254)
        manager = FaultManager(acc, config=RepairConfig(policy="spare"))
        weights = [rng.uniform(-1, 1, (14, 10)), rng.uniform(-1, 1, (3, 14))]
        log = manager.deploy(weights)
        assert log.row_remaps > 0
        for layer, w in zip(acc.layers, weights):
            bank = acc.pes[layer.tiles[0][4]].bank
            r, c = w.shape
            realized = bank.logical_weights[:r, :c]
            # 3 sigma of write noise on top of the half-step quantization.
            assert np.allclose(
                realized, w / layer.weight_scale, atol=5 * bank.weight_step
            )

    def test_remap_policy_migrates_when_spares_cannot_help(self, rng):
        acc = _verified_acc(seed=1, spare_rows=1)
        # Heavy damage on a bank with a single spare forces migration.
        acc.inject_stuck_faults(0.3, stuck_level=254)
        n_pes_before = len(acc.pes)
        manager = FaultManager(
            acc, config=RepairConfig(policy="remap", max_migrations=2)
        )
        weights = [rng.uniform(-1, 1, (14, 10)), rng.uniform(-1, 1, (3, 14))]
        log = manager.deploy(weights)
        assert log.migrations >= 1
        assert len(acc.pes) == n_pes_before + log.migrations
        # Migrated tiles point at the new PEs and still stream.
        acc.forward_batch(rng.uniform(-1, 1, (4, 10)))

    def test_migration_respects_pe_budget(self, rng):
        acc = _verified_acc(seed=1, spare_rows=0, n_pes=2)
        acc.inject_stuck_faults(0.3, stuck_level=254)
        manager = FaultManager(
            acc, config=RepairConfig(policy="remap", screen_spares=False)
        )
        log = manager.deploy(
            [rng.uniform(-1, 1, (14, 10)), rng.uniform(-1, 1, (3, 14))]
        )
        assert log.migrations == 0  # budget already full: degrade instead
        assert log.tiles_unrepaired > 0

    def test_repairs_are_charged(self, rng):
        weights = [rng.uniform(-1, 1, (14, 10)), rng.uniform(-1, 1, (3, 14))]
        energies = {}
        for policy in ("none", "spare"):
            acc = _verified_acc(seed=3, spare_rows=8)
            acc.inject_stuck_faults(0.05, stuck_level=254)
            FaultManager(acc, config=RepairConfig(policy=policy)).deploy(
                [w.copy() for w in weights]
            )
            energies[policy] = (acc.energy_estimate_j(), acc.time_estimate_s())
        assert energies["spare"][0] > energies["none"][0]
        assert energies["spare"][1] > energies["none"][1]

    def test_maybe_refresh(self, rng):
        acc = _verified_acc(seed=0)
        manager = FaultManager(acc, config=RepairConfig(policy="retry"))
        acc.set_weights(
            [rng.uniform(-1, 1, (14, 10)), rng.uniform(-1, 1, (3, 14))]
        )
        writes_before = acc.counters.bank_writes
        assert not manager.maybe_refresh(age_s=60.0, temperature_k=300.0)
        assert acc.counters.bank_writes == writes_before
        assert manager.maybe_refresh(age_s=3.15e8, temperature_k=400.0)
        assert acc.counters.bank_writes == writes_before + 2
        assert manager.log.refreshes == 1


class TestAcceleratorPlumbing:
    def test_seeded_runs_are_bit_identical(self, rng):
        weights = [rng.uniform(-1, 1, (14, 10)), rng.uniform(-1, 1, (3, 14))]
        realized = []
        for _ in range(2):
            acc = _verified_acc(seed=42)
            acc.inject_stuck_faults(0.1, stuck_level=254)
            acc.set_weights([w.copy() for w in weights])
            realized.append(
                [pe.bank.realized_weights.copy() for pe in acc.pes]
            )
        for a, b in zip(*realized):
            assert np.array_equal(a, b)

    def test_migrate_tile_requires_budget(self, rng):
        acc = TridentAccelerator(config=TridentConfig(n_pes=2))
        acc.map_mlp([10, 14, 3])
        with pytest.raises(RepairError):
            acc.migrate_tile(0, 0)

    def test_reprogram_tile_before_weights_raises(self):
        acc = _verified_acc()
        from repro.errors import MappingError

        with pytest.raises(MappingError):
            acc.reprogram_tile(0, 0)


class TestCampaign:
    def test_smoke_campaign_end_to_end(self, tmp_path):
        report = run_campaign(CampaignConfig.smoke())
        assert report.parity_ok
        assert len(report.rows) == 4  # 2 fractions x 2 policies x 1 trial
        assert 0.0 <= report.clean_accuracy <= 1.0
        # Training survived every run (finite losses).
        assert all(np.isfinite(r.train_loss_last) for r in report.rows)
        paths = export_fault_campaign(report, tmp_path)
        assert [p.name for p in paths] == [
            "fault_campaign.csv",
            "fault_campaign.json",
        ]
        assert all(p.exists() and p.stat().st_size > 0 for p in paths)

    def test_campaign_validation(self):
        # Structural mistakes stay ConfigError...
        with pytest.raises(ConfigError):
            CampaignConfig(dims=(10,))
        with pytest.raises(ConfigError):
            CampaignConfig(policies=("bogus",))
        # ...numeric ranges raise FaultError with the offending value named.
        with pytest.raises(FaultError):
            CampaignConfig(fault_fractions=())
        with pytest.raises(FaultError, match="1.5"):
            CampaignConfig(fault_fractions=(1.5,))
        with pytest.raises(FaultError, match="-0.1"):
            CampaignConfig(fault_fractions=(-0.1,))
        with pytest.raises(FaultError, match="trials"):
            CampaignConfig(trials=0)
        with pytest.raises(FaultError, match="train_lr"):
            CampaignConfig(train_lr=0.0)
        with pytest.raises(FaultError, match="train_lr"):
            CampaignConfig(train_lr=-0.5)
        with pytest.raises(FaultError, match="train_batches"):
            CampaignConfig(train_batches=-1)
        with pytest.raises(FaultError, match="stuck_level"):
            CampaignConfig(stuck_level=300)
        with pytest.raises(FaultError, match="spare_rows"):
            CampaignConfig(spare_rows=-1)
        with pytest.raises(FaultError, match="parity_samples"):
            CampaignConfig(parity_samples=0)

    def test_cli_faults_smoke(self, capsys):
        assert main(["faults", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "Fault campaign" in out
        assert "parity: OK" in out


class TestTrainingSurvival:
    def test_aborts_at_first_nonfinite_loss(self, monkeypatch):
        """A NaN loss ends the survival loop immediately and records the
        step it died at — later steps would train on garbage weights."""
        from repro.faults.campaign import _training_survives
        from repro.nn.datasets import make_blobs
        from repro.training.insitu import InSituTrainer

        losses = iter([0.9, float("nan"), 0.1, 0.05])
        calls = {"n": 0}

        def fake_step(self, xb, yb):
            calls["n"] += 1
            return next(losses)

        monkeypatch.setattr(InSituTrainer, "train_step", fake_step)
        repairs = {"n": 0}

        class FakeManager:
            def repair(self):
                repairs["n"] += 1

        config = CampaignConfig(train_batches=4)
        acc = _verified_acc()
        acc.set_weights(
            [np.zeros((14, 10)), np.zeros((3, 14))]
        )
        test = make_blobs(n_samples=64, n_features=10, n_classes=3, seed=0)
        first, last, died = _training_survives(
            acc, FakeManager(), test, config
        )
        assert first == 0.9
        assert np.isnan(last)
        assert died == 1
        assert calls["n"] == 2  # steps 2 and 3 never ran
        assert repairs["n"] == 1  # only the healthy step swept repairs

    def test_surviving_run_reports_no_death(self, monkeypatch):
        from repro.faults.campaign import _training_survives
        from repro.nn.datasets import make_blobs
        from repro.training.insitu import InSituTrainer

        monkeypatch.setattr(
            InSituTrainer, "train_step", lambda self, xb, yb: 0.5
        )

        class FakeManager:
            def repair(self):
                pass

        config = CampaignConfig(train_batches=3)
        acc = _verified_acc()
        acc.set_weights([np.zeros((14, 10)), np.zeros((3, 14))])
        test = make_blobs(n_samples=64, n_features=10, n_classes=3, seed=0)
        first, last, died = _training_survives(
            acc, FakeManager(), test, config
        )
        assert (first, last, died) == (0.5, 0.5, None)


class TestCampaignResume:
    def test_interrupted_campaign_resumes_bit_identically(self, tmp_path):
        """Halt after one cell, resume, and the final report must equal an
        uninterrupted run: same rows, losses, counters, clean accuracy."""
        from repro.faults import resume_campaign

        config = CampaignConfig.smoke()
        baseline = run_campaign(config)
        assert baseline.complete

        partial = run_campaign(config, checkpoint_dir=tmp_path, max_cells=1)
        assert not partial.complete
        assert len(partial.rows) == 1
        assert (tmp_path / "campaign_cells.jsonl").exists()

        resumed = resume_campaign(tmp_path)
        assert resumed.complete
        assert resumed.clean_accuracy == baseline.clean_accuracy
        assert [r.as_dict() for r in resumed.rows] == [
            r.as_dict() for r in baseline.rows
        ]

    def test_completed_cells_are_not_rerun(self, tmp_path):
        config = CampaignConfig.smoke()
        run_campaign(config, checkpoint_dir=tmp_path)
        ledger = tmp_path / "campaign_cells.jsonl"
        before = ledger.read_text()
        # A second run loads every cell from the ledger and appends nothing.
        report = run_campaign(config, checkpoint_dir=tmp_path)
        assert report.complete
        assert len(report.rows) == 4
        assert ledger.read_text() == before

    def test_torn_trailing_line_is_ignored(self, tmp_path):
        config = CampaignConfig.smoke()
        run_campaign(config, checkpoint_dir=tmp_path, max_cells=2)
        ledger = tmp_path / "campaign_cells.jsonl"
        # Simulate a crash mid-append: truncate the last line.
        text = ledger.read_text()
        ledger.write_text(text[:-30])
        from repro.faults import resume_campaign

        with pytest.warns(RuntimeWarning, match="torn"):
            resumed = resume_campaign(tmp_path)
        assert resumed.complete
        assert len(resumed.rows) == 4

    def test_mismatched_config_rejected(self, tmp_path):
        from repro.errors import CheckpointError

        run_campaign(CampaignConfig.smoke(), checkpoint_dir=tmp_path, max_cells=1)
        other = CampaignConfig.smoke()
        other = CampaignConfig(
            fault_fractions=other.fault_fractions,
            policies=other.policies,
            trials=other.trials,
            train_batches=other.train_batches,
            seed=99,
        )
        with pytest.raises(CheckpointError, match="different"):
            run_campaign(other, checkpoint_dir=tmp_path)

    def test_cli_resume_smoke(self, capsys):
        assert main(["resume", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical to uninterrupted run: OK" in out
