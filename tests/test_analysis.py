"""Tests for the extended analyses (variation, endurance, sensitivity,
precision)."""

import pytest

from repro.analysis import (
    endurance_report,
    parameter_sensitivity,
    precision_sweep,
    variation_sweep,
)
from repro.errors import ConfigError
from repro.nn import build_model


class TestEndurance:
    @pytest.fixture(scope="class")
    def resnet_report(self):
        return endurance_report(build_model("resnet50"))

    def test_activation_cells_are_the_limiter(self, resnet_report):
        """The extension finding: activation cells cycle per firing event
        and wear out far before the weight banks."""
        assert resnet_report.limiting_population == "activation"
        assert (
            resnet_report.activation_lifetime_s
            < resnet_report.weight_lifetime_s / 10
        )

    def test_weight_lifetime_years_scale(self, resnet_report):
        assert 0.1 < resnet_report.weight_lifetime_years < 100

    def test_activation_lifetime_hours_scale(self, resnet_report):
        # Trillion-cycle rating buys hours-to-days, not years.
        assert 1 < resnet_report.activation_lifetime_hours < 10_000

    def test_larger_batch_extends_weight_lifetime(self):
        net = build_model("googlenet")
        small = endurance_report(net, batch=8)
        large = endurance_report(net, batch=256)
        assert large.weight_lifetime_inferences > small.weight_lifetime_inferences

    def test_lower_endurance_rating_scales_linearly(self):
        net = build_model("googlenet")
        full = endurance_report(net, endurance_cycles=int(1e12))
        weak = endurance_report(net, endurance_cycles=int(1e9))
        assert full.activation_lifetime_inferences == pytest.approx(
            1000 * weak.activation_lifetime_inferences
        )

    def test_firing_probability_scales_activation_wear(self):
        net = build_model("googlenet")
        hot = endurance_report(net, firing_probability=1.0)
        cool = endurance_report(net, firing_probability=0.25)
        assert cool.activation_lifetime_inferences == pytest.approx(
            4 * hot.activation_lifetime_inferences
        )

    def test_validation(self):
        net = build_model("googlenet")
        with pytest.raises(ConfigError):
            endurance_report(net, endurance_cycles=0)
        with pytest.raises(ConfigError):
            endurance_report(net, firing_probability=0.0)


class TestSensitivity:
    @pytest.fixture(scope="class")
    def records(self):
        return parameter_sensitivity("googlenet", batch=8)

    def test_covers_all_sweepable_parameters(self, records):
        names = {r.parameter for r in records}
        assert names == {
            "symbol_rate_hz",
            "write_energy_per_cell_j",
            "write_time_s",
            "streaming_power_pe_w",
        }

    def test_symbol_rate_dominates_latency(self, records):
        by_name = {r.parameter: r for r in records}
        assert abs(by_name["symbol_rate_hz"].latency_elasticity) > 0.8
        assert by_name["symbol_rate_hz"].latency_elasticity < 0  # faster = less time

    def test_streaming_power_hits_energy_not_latency(self, records):
        by_name = {r.parameter: r for r in records}
        r = by_name["streaming_power_pe_w"]
        assert r.energy_elasticity > 0.3
        assert abs(r.latency_elasticity) < 0.01

    def test_write_energy_matters_at_small_batch(self, records):
        by_name = {r.parameter: r for r in records}
        assert by_name["write_energy_per_cell_j"].energy_elasticity > 0.05

    def test_sorted_by_energy_impact(self, records):
        magnitudes = [abs(r.energy_elasticity) for r in records]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_validation(self):
        with pytest.raises(ConfigError):
            parameter_sensitivity("googlenet", delta=0.0)


class TestPrecision:
    @pytest.fixture(scope="class")
    def points(self):
        return precision_sweep(bits_list=(2, 4, 8), epochs=6)

    def test_insitu_training_collapses_at_2_bits(self, points):
        """The paper's core resolution claim, demonstrated: training needs
        resolution far more than deployment does."""
        by_bits = {p.bits: p for p in points}
        assert by_bits[2].insitu_accuracy < by_bits[2].deployed_accuracy - 0.1
        assert by_bits[2].insitu_accuracy < by_bits[8].insitu_accuracy - 0.2

    def test_8_bits_recovers_digital_accuracy(self, points):
        by_bits = {p.bits: p for p in points}
        assert by_bits[8].training_drop < 0.05
        assert by_bits[8].deployment_drop < 0.02

    def test_monotone_improvement_with_bits(self, points):
        insitu = [p.insitu_accuracy for p in sorted(points, key=lambda p: p.bits)]
        assert insitu[0] < insitu[-1]

    def test_validation(self):
        with pytest.raises(ConfigError):
            precision_sweep(bits_list=())
        with pytest.raises(ConfigError):
            precision_sweep(bits_list=(1,))


class TestVariation:
    @pytest.fixture(scope="class")
    def points(self):
        return variation_sweep(
            programming_levels=(0.0, 6.0),
            detection_stds=(0.0, 0.2),
            n_trials=3,
        )

    def test_grid_complete(self, points):
        assert len(points) == 4

    def test_clean_deployment_is_best(self, points):
        by_key = {
            (p.programming_noise_levels, p.detection_noise_std): p for p in points
        }
        clean = by_key[(0.0, 0.0)]
        assert clean.std_accuracy == 0.0  # deterministic
        noisy = by_key[(6.0, 0.2)]
        assert noisy.mean_accuracy <= clean.mean_accuracy

    def test_detection_noise_degrades(self, points):
        by_key = {
            (p.programming_noise_levels, p.detection_noise_std): p for p in points
        }
        assert (
            by_key[(0.0, 0.2)].mean_accuracy < by_key[(0.0, 0.0)].mean_accuracy
        )

    def test_worst_at_most_mean(self, points):
        for p in points:
            assert p.worst_accuracy <= p.mean_accuracy + 1e-12

    def test_validation(self):
        with pytest.raises(ConfigError):
            variation_sweep(n_trials=0)


class TestAging:
    @pytest.fixture(scope="class")
    def points(self):
        from repro.analysis.aging import aging_sweep

        return aging_sweep(ages_s=(0.0, 1e6, 3e7), temperature_c=85.0)

    def test_fresh_weights_match_reference(self, points):
        assert points[0].worst_weight_drift < 1e-12

    def test_drift_grows_with_age(self, points):
        drifts = [p.worst_weight_drift for p in points]
        assert drifts == sorted(drifts)
        assert drifts[-1] > 0.05

    def test_accuracy_degrades_eventually(self, points):
        assert points[-1].accuracy <= points[0].accuracy

    def test_room_temperature_is_stable(self):
        from repro.analysis.aging import aging_sweep

        points = aging_sweep(ages_s=(0.0, 3e7), temperature_c=25.0)
        assert points[-1].accuracy == points[0].accuracy
        assert points[-1].worst_weight_drift < 1e-4

    def test_validation(self):
        from repro.analysis.aging import aging_sweep
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            aging_sweep(ages_s=())


class TestNoiseAwareTraining:
    @pytest.fixture(scope="class")
    def task(self):
        import numpy as np

        from repro.nn.datasets import Dataset, make_blobs, standardize

        data = make_blobs(n_samples=300, n_features=10, n_classes=3, spread=2.0, seed=5)
        data = Dataset(x=np.clip(standardize(data.x) / 3, -1, 1), y=data.y)
        return data.split(0.8, seed=1)

    def _train(self, model, train, lr=0.4, epochs=8):
        for epoch in range(epochs):
            for xb, yb in train.batches(16, seed=epoch):
                model.train_step(xb, yb, lr=lr)
        return model

    def test_converges_to_clean_level(self, task):
        from repro.analysis.robust_training import NoiseAwareMLP
        from repro.nn.reference import DigitalMLP

        train, test = task
        aware = self._train(NoiseAwareMLP([10, 14, 3], seed=7), train)
        clean = self._train(DigitalMLP([10, 14, 3], activation="gst", seed=7), train)
        assert aware.accuracy(test.x, test.y) >= clean.accuracy(test.x, test.y) - 0.05

    def test_clean_weights_stay_unquantized(self, task):
        """Straight-through: updates land on the full-precision shadow."""
        import numpy as np

        from repro.analysis.robust_training import NoiseAwareMLP
        from repro.nn.quantization import UniformQuantizer

        train, _ = task
        aware = self._train(NoiseAwareMLP([10, 14, 3], seed=7), train, epochs=2)
        q = UniformQuantizer.from_bits(8)
        w = aware.weights[0]
        scale = max(1.0, float(np.max(np.abs(w))))
        snapped = q.roundtrip(w / scale) * scale
        assert not np.allclose(w, snapped)

    def test_hardware_view_is_stochastic(self):
        import numpy as np

        from repro.analysis.robust_training import NoiseAwareMLP

        aware = NoiseAwareMLP([4, 3], programming_noise_levels=2.0, seed=0)
        w = aware.weights[0]
        a = aware._hardware_view(w)
        b = aware._hardware_view(w)
        assert not np.array_equal(a, b)

    def test_zero_noise_view_is_pure_quantization(self):
        import numpy as np

        from repro.analysis.robust_training import NoiseAwareMLP
        from repro.nn.quantization import UniformQuantizer

        aware = NoiseAwareMLP([4, 3], programming_noise_levels=0.0, seed=0)
        w = aware.weights[0]
        q = UniformQuantizer.from_bits(8)
        scale = max(1.0, float(np.max(np.abs(w))))
        assert np.allclose(aware._hardware_view(w), q.roundtrip(w / scale) * scale)

    def test_validation(self):
        from repro.analysis.robust_training import NoiseAwareMLP

        with pytest.raises(ConfigError):
            NoiseAwareMLP([4, 3], bits=1)
        with pytest.raises(ConfigError):
            NoiseAwareMLP([4, 3], programming_noise_levels=-1.0)


class TestThermalDeployment:
    @pytest.fixture(scope="class")
    def points(self):
        from repro.analysis.thermal_deployment import thermal_vs_gst_deployment

        return thermal_vs_gst_deployment(couplings=(0.0035, 0.01, 0.03))

    def test_gst_point_first_and_cleanest(self, points):
        assert points[0].label == "gst"
        assert points[0].bits == 8
        errors = [p.worst_weight_error for p in points]
        assert errors[0] == min(errors)

    def test_weight_error_grows_with_coupling(self, points):
        thermal = points[1:]
        errors = [p.worst_weight_error for p in thermal]
        assert errors == sorted(errors)

    def test_strong_coupling_costs_accuracy(self, points):
        assert points[-1].accuracy < points[0].accuracy

    def test_gst_worst_error_is_8bit_half_lsb(self, points):
        assert points[0].worst_weight_error <= 1.0 / 254 + 1e-9

    def test_deployed_weights_validation(self):
        import numpy as np

        from repro.analysis.thermal_deployment import thermally_deployed_weights
        from repro.devices.thermal_crosstalk import ThermalCrosstalkModel

        model = ThermalCrosstalkModel(n_rings=8)
        with pytest.raises(ConfigError):
            thermally_deployed_weights(np.zeros((4, 7)), model)
        with pytest.raises(ConfigError):
            thermally_deployed_weights(np.full((4, 8), 1.5), model)

    def test_zero_coupling_is_pure_6bit_quantization(self):
        import numpy as np

        from repro.analysis.thermal_deployment import thermally_deployed_weights
        from repro.devices.thermal_crosstalk import ThermalCrosstalkModel
        from repro.nn.quantization import UniformQuantizer

        rng = np.random.default_rng(0)
        w = rng.uniform(-1, 1, (5, 8))
        model = ThermalCrosstalkModel(n_rings=8, adjacent_coupling=0.0)
        realized = thermally_deployed_weights(w, model, bits=6)
        assert np.allclose(realized, UniformQuantizer.from_bits(6).roundtrip(w))

    def test_validation(self):
        from repro.analysis.thermal_deployment import thermal_vs_gst_deployment

        with pytest.raises(ConfigError):
            thermal_vs_gst_deployment(couplings=())
