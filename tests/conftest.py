"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.config import TridentConfig
from repro.devices.noise import NoiseModel
from repro.devices.pcm_mrr import build_calibration


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def config() -> TridentConfig:
    return TridentConfig()


@pytest.fixture
def noisy() -> NoiseModel:
    return NoiseModel.realistic(seed=7)


@pytest.fixture(scope="session")
def calibration():
    """One shared device calibration (it is deterministic and immutable)."""
    return build_calibration()
