"""Tests for the fault-aware serving layer (repro.serving)."""

import numpy as np
import pytest

from repro import telemetry
from repro.errors import ServingError, WorkerFault
from repro.runtime import VirtualClock
from repro.serving import (
    AcceleratorWorker,
    AdmissionQueue,
    BreakerState,
    CircuitBreaker,
    CompletedRequest,
    InferenceRequest,
    MicroBatcher,
    Phase,
    RejectedRequest,
    ServerConfig,
    ShedReason,
    TridentServer,
    WorkloadConfig,
    build_worker,
    run_serve_workload,
    shed_rate_by_priority,
    smoke_checks,
    sustainable_rate_hz,
    synthesize_arrivals,
)


def req(rid, arrival=0.0, deadline=None, priority=0, n_in=4):
    return InferenceRequest(
        request_id=rid,
        x=np.zeros(n_in),
        arrival_s=arrival,
        deadline_s=deadline,
        priority=priority,
    )


# ---------------------------------------------------------------------------
class TestVirtualClock:
    def test_starts_at_zero_and_advances(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        clock.advance_to(2.0)
        assert clock.now() == 2.0

    def test_rejects_rewind(self):
        clock = VirtualClock(start_s=1.0)
        with pytest.raises(ServingError):
            clock.advance(-0.1)
        with pytest.raises(ServingError):
            clock.advance_to(0.5)


# ---------------------------------------------------------------------------
class TestAdmissionQueue:
    def test_pops_in_priority_then_fifo_order(self):
        q = AdmissionQueue(max_depth=8)
        for r in (req(0, 0.0, priority=0), req(1, 1.0, priority=2),
                  req(2, 2.0, priority=1), req(3, 3.0, priority=2)):
            q.push(r)
        assert [r.request_id for r in q.pop_batch(4)] == [1, 3, 2, 0]

    def test_offer_refuses_equal_priority_when_full(self):
        q = AdmissionQueue(max_depth=2)
        q.push(req(0, 0.0))
        q.push(req(1, 1.0))
        admitted, evicted = q.offer(req(2, 2.0))
        assert not admitted and evicted is None
        assert len(q) == 2

    def test_offer_evicts_youngest_of_lowest_tier(self):
        q = AdmissionQueue(max_depth=3)
        q.push(req(0, 0.0, priority=0))
        q.push(req(1, 1.0, priority=0))
        q.push(req(2, 2.0, priority=1))
        admitted, evicted = q.offer(req(3, 3.0, priority=2))
        assert admitted
        assert evicted.request_id == 1  # youngest priority-0 resident
        assert {r.request_id for r in q.snapshot()} == {0, 2, 3}

    def test_eviction_tie_break_follows_admission_order_not_id(self):
        # Regression: equal-priority, equal-arrival residents must evict
        # deterministically by admission order (last admitted first), not
        # by whatever request_id the producer happened to assign.  The
        # queue stamps its own admission sequence on every push, so the
        # victim is replay-stable even when ids arrive out of order.
        q = AdmissionQueue(max_depth=2)
        q.push(req(9, arrival=1.0, priority=0))  # admitted first
        q.push(req(5, arrival=1.0, priority=0))  # admitted second
        admitted, evicted = q.offer(req(7, arrival=2.0, priority=1))
        assert admitted
        assert evicted.request_id == 5  # last admitted, despite lower id
        assert {r.request_id for r in q.snapshot()} == {9, 7}

    def test_push_beyond_bound_raises(self):
        q = AdmissionQueue(max_depth=1)
        q.push(req(0))
        with pytest.raises(ServingError):
            q.push(req(1))

    def test_drop_hopeless_removes_only_expired(self):
        q = AdmissionQueue(max_depth=4)
        q.push(req(0, 0.0, deadline=1.0))    # hopeless at t=2
        q.push(req(1, 0.0, deadline=5.0))    # fine
        q.push(req(2, 0.0, deadline=None))   # best-effort: never hopeless
        dropped = q.drop_hopeless(now_s=2.0, min_service_s=0.5)
        assert [r.request_id for r in dropped] == [0]
        assert len(q) == 2


# ---------------------------------------------------------------------------
class TestMicroBatcher:
    def service(self, batch):
        return 1e-6 + batch * 1e-7

    def test_full_batch_dispatches(self):
        b = MicroBatcher(max_batch=2, slo_latency_s=1e-5)
        q = AdmissionQueue(8)
        q.push(req(0, 0.0))
        q.push(req(1, 0.0))
        assert b.should_dispatch(q, 0.0, next_refill_s=1e-9,
                                 service_time_fn=self.service)

    def test_no_refill_dispatches(self):
        b = MicroBatcher(max_batch=4, slo_latency_s=1e-5)
        q = AdmissionQueue(8)
        q.push(req(0, 0.0))
        assert b.should_dispatch(q, 0.0, None, self.service)

    def test_waits_to_coalesce_inside_budget(self):
        b = MicroBatcher(max_batch=4, slo_latency_s=1e-4)
        q = AdmissionQueue(8)
        q.push(req(0, 0.0))
        # Refill almost immediately, budget huge: wait for a fuller batch.
        assert not b.should_dispatch(q, 0.0, 1e-8, self.service)

    def test_dispatches_when_waiting_busts_budget(self):
        b = MicroBatcher(max_batch=4, slo_latency_s=1e-6)
        q = AdmissionQueue(8)
        q.push(req(0, 0.0, deadline=1.5e-6))
        # Refill so late that coalescing would land past the deadline.
        assert b.should_dispatch(q, 0.0, 1e-6, self.service)

    def test_empty_queue_never_dispatches(self):
        b = MicroBatcher(max_batch=4, slo_latency_s=1e-5)
        assert not b.should_dispatch(AdmissionQueue(8), 0.0, None, self.service)


# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, **kw):
        self.transitions = []
        kw.setdefault("failure_threshold", 2)
        kw.setdefault("cooldown_s", 1.0)
        return CircuitBreaker(
            0, on_transition=lambda *a: self.transitions.append(a), **kw
        )

    def test_opens_at_failure_threshold(self):
        b = self.make()
        b.record_failure(0.0)
        assert b.state is BreakerState.CLOSED
        b.record_failure(0.1)
        assert b.state is BreakerState.OPEN
        assert self.transitions[-1][3] is BreakerState.OPEN

    def test_success_resets_failure_count(self):
        b = self.make()
        b.record_failure(0.0)
        b.record_success(0.1)
        b.record_failure(0.2)
        assert b.state is BreakerState.CLOSED

    def test_cooldown_then_half_open_then_close(self):
        b = self.make()
        b.trip(0.0, "health_signal")
        assert not b.allow(0.5)
        assert b.allow(1.0)  # cooldown elapsed -> half-open probe
        assert b.state is BreakerState.HALF_OPEN
        b.record_success(1.1)
        assert b.state is BreakerState.CLOSED
        reasons = [t[4] for t in self.transitions]
        assert reasons == ["health_signal", "cooldown_elapsed", "probe_succeeded"]

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        b = self.make()
        b.trip(0.0, "health_signal")
        assert b.allow(1.0)
        b.record_failure(1.2)
        assert b.state is BreakerState.OPEN
        assert b.next_probe_s() == pytest.approx(2.2)

    def test_validates_config(self):
        with pytest.raises(ServingError):
            CircuitBreaker(0, failure_threshold=0)
        with pytest.raises(ServingError):
            CircuitBreaker(0, cooldown_s=0.0)


# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_dims():
    return (6, 4)


def make_worker(worker_id=0, dims=(6, 4), seed=3):
    return build_worker(worker_id, dims, seed)


class TestAcceleratorWorker:
    def test_requires_programmed_network(self):
        from repro.arch import TridentAccelerator

        with pytest.raises(ServingError):
            AcceleratorWorker(0, TridentAccelerator())

    def test_service_time_grows_with_batch(self, tiny_dims):
        worker = make_worker(dims=tiny_dims)
        t1, t8 = worker.service_time_s(1), worker.service_time_s(8)
        assert 0 < t1 < t8

    def test_execute_returns_batch_outputs(self, tiny_dims):
        worker = make_worker(dims=tiny_dims)
        out = worker.execute(np.zeros((3, tiny_dims[0])))
        assert out.shape == (3, tiny_dims[-1])
        assert worker.batches_executed == 1

    def test_degraded_worker_fails_instead_of_serving_garbage(self, tiny_dims):
        worker = make_worker(dims=tiny_dims)
        worker.degrade(0.3, stuck_level=254)
        assert not worker.healthy
        with pytest.raises(WorkerFault):
            worker.execute(np.zeros((2, tiny_dims[0])))
        assert worker.batches_failed == 1

    def test_repair_restores_health(self, tiny_dims):
        worker = make_worker(dims=tiny_dims)
        worker.degrade(0.2, stuck_level=254)
        assert not worker.healthy
        assert worker.repair()
        assert worker.healthy
        # Post-migration the abandoned PE's stale readback must not count.
        assert worker.unconverged_fraction == 0.0
        out = worker.execute(np.zeros((2, tiny_dims[0])))
        assert out.shape == (2, tiny_dims[-1])

    def test_health_snapshot_keys(self, tiny_dims):
        health = make_worker(dims=tiny_dims).health()
        assert set(health) >= {
            "worker", "unconverged_fraction", "healthy", "tiles_unrepaired",
        }


# ---------------------------------------------------------------------------
class TestTridentServer:
    def serve(self, arrivals, n_workers=1, dims=(6, 4), **config_kw):
        workers = [make_worker(i, dims, seed=3 + i) for i in range(n_workers)]
        config_kw.setdefault("max_queue_depth", 8)
        config_kw.setdefault("max_batch", 4)
        config_kw.setdefault("slo_latency_s", 1e-4)
        server = TridentServer(workers, config=ServerConfig(**config_kw))
        return server.run(arrivals), server

    def test_light_load_completes_everything(self):
        arrivals = [req(i, i * 1e-5, n_in=6) for i in range(6)]
        report, _ = self.serve(arrivals)
        assert report.conservation_ok()
        assert len(report.completed) == 6 and not report.shed
        assert all(isinstance(c, CompletedRequest) for c in report.completed)
        assert all(c.latency_s > 0 for c in report.completed)

    def test_outputs_match_request_order_not_dispatch_order(self):
        arrivals = [
            req(0, 0.0, priority=0, n_in=6),
            req(1, 1e-9, priority=2, n_in=6),
        ]
        report, _ = self.serve(arrivals)
        by_id = {c.request.request_id: c for c in report.completed}
        assert set(by_id) == {0, 1}

    def test_queue_full_sheds_structured_rejection(self):
        # Best-effort flood far beyond the queue bound, all at t~0.
        arrivals = [req(i, i * 1e-12, n_in=6) for i in range(30)]
        report, _ = self.serve(arrivals, max_queue_depth=2, max_batch=2)
        assert report.conservation_ok()
        full = [r for r in report.shed if r.reason is ShedReason.QUEUE_FULL]
        assert full and all(isinstance(r, RejectedRequest) for r in full)
        assert all(r.detail for r in report.shed)

    def test_priority_eviction_under_overload(self):
        arrivals = [req(i, i * 1e-12, priority=0, n_in=6) for i in range(6)]
        arrivals.append(req(6, 7e-12, priority=2, n_in=6))
        report, _ = self.serve(arrivals, max_queue_depth=2, max_batch=2)
        evicted = [
            r for r in report.shed if r.reason is ShedReason.PRIORITY_EVICTED
        ]
        assert len(evicted) == 1
        assert evicted[0].request.priority == 0
        # The high-priority newcomer itself completes.
        assert 6 in {c.request.request_id for c in report.completed}

    def test_impossible_deadline_shed_at_admission(self):
        arrivals = [req(0, 0.0, deadline=1e-12, n_in=6)]
        report, _ = self.serve(arrivals)
        assert [r.reason for r in report.shed] == [
            ShedReason.DEADLINE_UNREACHABLE
        ]

    def test_unrepairable_worker_exhausts_retries_not_hangs(self):
        # One worker, no manager: degradation is permanent.
        worker = make_worker(0, (6, 4), seed=3)
        worker.manager = None
        worker.degrade(0.3, stuck_level=254)
        server = TridentServer(
            [worker],
            config=ServerConfig(
                max_queue_depth=8, max_batch=2, slo_latency_s=1e-4,
                max_retries=1, breaker_cooldown_s=1e-6,
            ),
        )
        report = server.run([req(i, 0.0, n_in=6) for i in range(3)])
        assert report.conservation_ok()
        assert not report.completed
        reasons = {r.reason for r in report.shed}
        assert reasons <= {ShedReason.RETRIES_EXHAUSTED, ShedReason.NO_WORKER}
        assert all(
            r.attempts <= server.config.max_retries + 1 for r in report.shed
        )

    def test_rejects_bad_fleet(self):
        worker = make_worker(0, (6, 4))
        with pytest.raises(ServingError):
            TridentServer([])
        with pytest.raises(ServingError):
            TridentServer([worker, worker])

    def test_rejects_duplicate_request_ids(self):
        worker = make_worker(0, (6, 4))
        server = TridentServer([worker])
        with pytest.raises(ServingError):
            server.run([req(0, 0.0, n_in=6), req(0, 1.0, n_in=6)])

    def test_config_validation(self):
        with pytest.raises(ServingError):
            ServerConfig(max_queue_depth=0)
        with pytest.raises(ServingError):
            ServerConfig(slo_latency_s=0.0)
        with pytest.raises(ServingError):
            ServerConfig(retry_backoff_factor=0.5)

    def test_thread_pool_execution_matches_inline(self):
        arrivals = [req(i, i * 1e-7, n_in=6) for i in range(12)]
        inline, _ = self.serve(arrivals, n_workers=2)
        pooled, _ = self.serve(arrivals, n_workers=2, executor_threads=2)
        assert inline.decisions == pooled.decisions
        for a, b in zip(inline.completed, pooled.completed):
            assert np.array_equal(a.output, b.output)


# ---------------------------------------------------------------------------
class TestWorkloadAndSmoke:
    @pytest.fixture(scope="class")
    def runs(self):
        config = WorkloadConfig(
            phases=(
                Phase("warm", 150, 0.6),
                Phase("burst", 150, 2.0),
                Phase("drain", 250, 0.35),
            ),
        )
        report, server = run_serve_workload(config)
        replay, _ = run_serve_workload(config)
        return report, replay, server

    def test_smoke_checks_all_pass(self, runs):
        report, replay, _ = runs
        failed = [name for name, ok in smoke_checks(report, replay) if not ok]
        assert not failed

    def test_breaker_arc_trip_repair_restore(self, runs):
        report, _, _ = runs
        sequence = [
            (t["to"], t["reason"]) for t in report.breaker_transitions
        ]
        assert ("open", "failure_threshold") in sequence
        assert ("half_open", "cooldown_elapsed") in sequence
        assert ("closed", "probe_succeeded") in sequence

    def test_replay_outputs_bit_identical(self, runs):
        report, replay, _ = runs
        assert report.decisions == replay.decisions
        assert len(report.completed) == len(replay.completed)
        for a, b in zip(report.completed, replay.completed):
            assert a.request.request_id == b.request.request_id
            assert np.array_equal(a.output, b.output)

    def test_shedding_skews_low_priority(self, runs):
        report, _, _ = runs
        rates = shed_rate_by_priority(report)
        assert rates.get(0, 0.0) >= max(
            (rate for p, rate in rates.items() if p > 0), default=0.0
        )

    def test_report_dict_round_trips_to_json(self, runs):
        import json

        report, _, _ = runs
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["conservation_ok"] is True
        assert payload["submitted"] == 550

    def test_sustainable_rate_positive(self, tiny_dims):
        workers = [make_worker(dims=tiny_dims)]
        assert sustainable_rate_hz(workers, 4) > 0

    def test_synthesize_arrivals_sorted_and_windowed(self):
        config = WorkloadConfig()
        rng = np.random.default_rng(0)
        arrivals, windows = synthesize_arrivals(config, 1e6, rng)
        times = [r.arrival_s for r in arrivals]
        assert times == sorted(times)
        assert set(windows) == {"warm", "burst", "drain"}
        assert windows["warm"][1] <= windows["burst"][0] + 1e-12


# ---------------------------------------------------------------------------
class TestServingTelemetry:
    def test_decisions_emit_counters_and_events(self):
        worker = make_worker(0, (6, 4))
        with telemetry.session() as t:
            server = TridentServer(
                [worker],
                config=ServerConfig(max_queue_depth=2, max_batch=2),
            )
            server.run([req(i, i * 1e-12, n_in=6) for i in range(10)])
        samples = telemetry.parse_prometheus_text(t.metrics.to_prometheus())
        assert samples["repro_requests_admitted_total"] > 0
        assert samples["repro_requests_completed_total"] > 0
        assert samples['repro_requests_shed_total{reason="queue_full"}'] > 0
        kinds = {e.kind for e in t.events.records}
        assert {"serve_admit", "serve_dispatch", "serve_complete",
                "serve_shed"} <= kinds

    def test_telemetry_never_perturbs_decisions(self):
        arrivals = [req(i, i * 1e-12, n_in=6) for i in range(10)]

        def go():
            server = TridentServer(
                [make_worker(0, (6, 4))],
                config=ServerConfig(max_queue_depth=2, max_batch=2),
            )
            return server.run(arrivals)

        with telemetry.session():
            instrumented = go()
        bare = go()
        assert instrumented.decisions == bare.decisions
        for a, b in zip(instrumented.completed, bare.completed):
            assert np.array_equal(a.output, b.output)


# ---------------------------------------------------------------------------
class TestBatcherDispatchPricing:
    """Regressions for should_dispatch: price *now*, clamp stale refills."""

    @staticmethod
    def service(batch):
        return 1.0 + 2.0 * batch

    def make_queue(self):
        q = AdmissionQueue(8)
        q.push(req(0, 0.0))
        return q

    def test_immediate_dispatch_priced_against_head_budget(self):
        b = MicroBatcher(max_batch=4, slo_latency_s=10.0)
        q = self.make_queue()
        # Head budget ends at 10; serving the singleton right now already
        # finishes at 8 + 3 = 11.  The old check ignored now_s and priced
        # only the refill path (0 + 5 = 5 <= 10), stalling the head past
        # its budget.
        assert b.should_dispatch(q, 8.0, next_refill_s=0.0,
                                 service_time_fn=self.service)

    def test_stale_refill_clamped_to_now(self):
        b = MicroBatcher(max_batch=4, slo_latency_s=10.0)
        q = self.make_queue()
        # The refill timestamp (2.0) is in the past at now=6.0.  Unclamped
        # it prices the grown batch at 2 + 5 = 7 <= 10 and keeps waiting;
        # clamped, waiting finishes at max(2, 6) + 5 = 11 > 10 → dispatch.
        assert b.should_dispatch(q, 6.0, next_refill_s=2.0,
                                 service_time_fn=self.service)

    def test_future_refill_inside_budget_still_waits(self):
        b = MicroBatcher(max_batch=4, slo_latency_s=10.0)
        q = self.make_queue()
        # Sanity: the fix must not make the batcher trigger-happy.  At
        # now=1 an immediate dispatch finishes at 4 and waiting for the
        # refill at 2 finishes at 7 — both inside the budget of 10.
        assert not b.should_dispatch(q, 1.0, next_refill_s=2.0,
                                     service_time_fn=self.service)


# ---------------------------------------------------------------------------
class TestEstimateBusyUntilZero:
    """Regression: busy-until-0.0 is *busy*, not idle (falsy coercion)."""

    def test_worker_free_at_zero_not_coerced_to_now(self):
        server = TridentServer([make_worker(0, (6, 4))],
                               config=ServerConfig())
        server._busy_until[0] = 0.0  # a dispatch issued at clock start
        assert server._worker_free_s(0, now_s=7.0) == 0.0
        server._busy_until[0] = None
        assert server._worker_free_s(0, now_s=7.0) == 7.0

    def test_t0_admission_estimate_matches_idle(self):
        server = TridentServer([make_worker(0, (6, 4))],
                               config=ServerConfig(max_batch=2))
        idle = server._estimate_completion_s(0.0)
        assert np.isfinite(idle)
        server._busy_until[0] = 0.0
        assert server._estimate_completion_s(0.0) == idle

    def test_t0_deadline_admission_not_spuriously_shed(self):
        worker = make_worker(0, (6, 4))
        server = TridentServer([worker], config=ServerConfig(max_batch=2))
        deadline = 2.0 * worker.service_time_s(1)
        report = server.run([req(0, 0.0, deadline=deadline, n_in=6)])
        assert report.completion_rate == 1.0
        assert not report.shed
