"""Tests: the discrete-event schedule simulator validates the closed forms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.cost_model import PhotonicArch, PhotonicCostModel
from repro.dataflow.schedule_sim import (
    analytical_makespan_s,
    simulate_layer,
    simulate_model,
)
from repro.dataflow.tiling import TileSchedule
from repro.errors import ConfigError, ScheduleError
from repro.nn import build_model
from repro.nn.graph import Network
from repro.nn.layers import GEMMShape, Pool, TensorShape


@pytest.fixture(scope="module")
def arch():
    return PhotonicArch.trident()


def sched(m, k, n, groups=1):
    return TileSchedule(GEMMShape(m=m, k=k, n=n, groups=groups), 16, 16)


class TestLayerSimulation:
    def test_single_tile(self, arch):
        s = sched(16, 16, 100)
        result = simulate_layer("l", s, arch, batch=1)
        assert result.n_tiles == 1
        expected = arch.write_time_s + 100 / arch.symbol_rate_hz
        assert result.makespan_s == pytest.approx(expected)

    def test_matches_closed_form_exactly(self, arch):
        """Uniform tiles under greedy scheduling == rounds x round_time."""
        for dims in ((256, 2304, 3136), (64, 576, 784), (100, 100, 50)):
            s = sched(*dims)
            sim = simulate_layer("l", s, arch, batch=4, keep_events=False)
            assert sim.makespan_s == pytest.approx(
                analytical_makespan_s(s, arch, batch=4), rel=1e-12
            )

    def test_events_never_overlap_per_pe(self, arch):
        s = sched(128, 128, 49)
        result = simulate_layer("l", s, arch)
        by_pe: dict[int, list] = {}
        for e in result.events:
            by_pe.setdefault(e.pe, []).append(e)
        for events in by_pe.values():
            events.sort(key=lambda e: e.start_s)
            for a, b in zip(events, events[1:]):
                assert b.start_s >= a.end_s - 1e-15

    def test_all_tiles_scheduled(self, arch):
        s = sched(64, 64, 10)
        result = simulate_layer("l", s, arch)
        assert result.n_tiles == s.n_tiles
        assert sorted(e.tile for e in result.events) == list(range(s.n_tiles))

    def test_utilization_full_when_tiles_multiple_of_pes(self, arch):
        # 176 tiles (2816/16 rows) over 44 PEs: exactly 4 rounds, no idle.
        s = sched(2816, 16, 100)
        result = simulate_layer("l", s, arch)
        assert result.pe_utilization(arch.n_pes) == pytest.approx(1.0)

    def test_utilization_below_one_with_remainder(self, arch):
        s = sched(45 * 16, 16, 100)  # 45 tiles on 44 PEs -> straggler round
        result = simulate_layer("l", s, arch)
        assert result.pe_utilization(arch.n_pes) < 0.6

    def test_energy_matches_cost_model(self, arch):
        """Event-level energy == the cost model's tuning + streaming."""
        s = sched(256, 2304, 3136)
        batch = 8
        sim = simulate_layer("l", s, arch, batch=batch, keep_events=False)
        cm = PhotonicCostModel(arch, batch=batch)
        cost = cm.layer_cost("l", s, TensorShape(56, 56, 64), True)
        # Cost model reports per-inference; simulation is per-batch.
        assert sim.tuning_energy_j == pytest.approx(
            cost.energy_breakdown["tuning"] * batch
        )
        assert sim.streaming_energy_j == pytest.approx(
            cost.energy_breakdown["streaming"] * batch
        )

    def test_rejects_bad_batch(self, arch):
        with pytest.raises(ConfigError):
            simulate_layer("l", sched(4, 4, 4), arch, batch=0)

    @settings(max_examples=20, deadline=None)
    @given(
        m=st.integers(1, 300),
        k=st.integers(1, 300),
        n=st.integers(1, 200),
    )
    def test_simulation_never_beats_closed_form(self, arch, m, k, n):
        """Property: greedy makespan equals the analytical bound (uniform
        tiles), and certainly never exceeds it."""
        s = sched(m, k, n)
        sim = simulate_layer("l", s, arch, keep_events=False)
        analytical = analytical_makespan_s(s, arch)
        assert sim.makespan_s == pytest.approx(analytical, rel=1e-9)


class TestModelSimulation:
    def test_googlenet_matches_cost_model_time(self, arch):
        """Whole-model simulated makespan == analytical compute time.
        GoogleNet: every weight tensor fits L2, so no layer is DRAM-bound
        and the cost model's max(compute, dram) reduces to compute."""
        net = build_model("googlenet")
        batch = 8
        sim = simulate_model(net, arch, batch=batch)
        cm = PhotonicCostModel(arch, batch=batch)
        cost = cm.model_cost(net)
        assert sim.makespan_s / batch == pytest.approx(cost.time_s, rel=0.01)

    def test_layer_count(self, arch):
        sim = simulate_model(build_model("alexnet"), arch)
        assert len(sim.layers) == 8

    def test_dram_bound_layers_simulate_faster_than_cost_model(self, arch):
        """AlexNet's fc6 weights (37.7 MB) exceed L2: the cost model adds
        DRAM transfer time the pure compute simulation does not see."""
        net = build_model("alexnet")
        sim = simulate_model(net, arch, batch=8)
        cost = PhotonicCostModel(arch, batch=8).model_cost(net)
        assert sim.makespan_s / 8 < cost.time_s

    def test_rejects_no_compute(self, arch):
        net = Network("empty", TensorShape(8, 8, 3))
        net.add(Pool("p", kernel=2))
        with pytest.raises(ScheduleError):
            simulate_model(net, arch)

    def test_energy_totals_positive(self, arch):
        sim = simulate_model(build_model("googlenet"), arch, batch=2)
        assert sim.tuning_energy_j > 0
        assert sim.streaming_energy_j > 0
