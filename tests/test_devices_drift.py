"""Tests for the GST retention/drift model."""

import numpy as np
import pytest

from repro.devices.drift import SECONDS_PER_YEAR, RetentionModel, refresh_schedule
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def model():
    return RetentionModel()


class TestTimeConstant:
    def test_spec_point_is_ten_years_at_85c(self, model):
        assert model.time_constant_s(358.15) == pytest.approx(10 * SECONDS_PER_YEAR)

    def test_room_temperature_effectively_nonvolatile(self, model):
        # The paper's "non-volatile" reading: many orders of magnitude
        # beyond a product lifetime at 25 C.
        assert model.time_constant_s(298.15) > 1e6 * SECONDS_PER_YEAR

    def test_monotone_decreasing_in_temperature(self, model):
        taus = [model.time_constant_s(t) for t in (300.0, 330.0, 360.0, 390.0)]
        assert all(a > b for a, b in zip(taus, taus[1:]))

    def test_rejects_bad_temperature(self, model):
        with pytest.raises(ConfigError):
            model.time_constant_s(0.0)


class TestAging:
    def test_zero_age_is_identity(self, model):
        c = np.linspace(0, 1, 11)
        assert np.allclose(model.aged_fraction(c, 0.0), c)

    def test_drift_is_toward_crystalline(self, model):
        c = np.linspace(0, 0.99, 20)
        aged = model.aged_fraction(c, SECONDS_PER_YEAR, temperature_k=358.15)
        assert np.all(aged >= c)
        assert np.all(aged <= 1.0)

    def test_fully_crystalline_is_stable(self, model):
        assert float(model.aged_fraction(1.0, 100 * SECONDS_PER_YEAR, 400.0)) == 1.0

    def test_infinite_time_limit(self, model):
        aged = model.aged_fraction(0.0, 1e4 * SECONDS_PER_YEAR, temperature_k=358.15)
        assert float(aged) == pytest.approx(1.0)

    def test_validation(self, model):
        with pytest.raises(ConfigError):
            model.aged_fraction(0.5, -1.0)
        with pytest.raises(ConfigError):
            model.aged_fraction(1.5, 1.0)


class TestWeightDrift:
    def test_weights_drift_negative(self, model, calibration):
        w = np.linspace(-0.9, 0.9, 19)
        aged = model.aged_weights(w, SECONDS_PER_YEAR, 358.15, calibration)
        assert np.all(aged <= w + 1e-12)

    def test_error_monotone_in_age(self, model, calibration):
        e1 = model.worst_case_weight_error(0.1 * SECONDS_PER_YEAR, 358.15, calibration)
        e2 = model.worst_case_weight_error(1.0 * SECONDS_PER_YEAR, 358.15, calibration)
        assert e2 > e1 > 0

    def test_negligible_at_room_temperature(self, model, calibration):
        err = model.worst_case_weight_error(10 * SECONDS_PER_YEAR, 298.15, calibration)
        assert err < 1e-4


class TestRefresh:
    def test_interval_respects_bound(self, model, calibration):
        bound = 0.01
        interval = model.refresh_interval_s(bound, 358.15, calibration)
        assert model.worst_case_weight_error(interval, 358.15, calibration) <= bound + 1e-9
        assert (
            model.worst_case_weight_error(interval * 1.5, 358.15, calibration) > bound
        )

    def test_room_temperature_capped_never(self, model, calibration):
        interval = model.refresh_interval_s(0.004, 298.15, calibration)
        assert interval == pytest.approx(1000 * SECONDS_PER_YEAR)

    def test_rejects_bad_bound(self, model):
        with pytest.raises(ConfigError):
            model.refresh_interval_s(0.0)

    def test_schedule_shape(self):
        rows = refresh_schedule()
        assert [r["temperature_c"] for r in rows] == [25.0, 55.0, 85.0, 105.0, 125.0]
        intervals = [r["refresh_interval_s"] for r in rows]
        assert all(a >= b for a, b in zip(intervals, intervals[1:]))

    def test_schedule_85c_is_days_scale(self):
        rows = {r["temperature_c"]: r for r in refresh_schedule()}
        assert 1 < rows[85.0]["refresh_interval_days"] < 60

    def test_schedule_validation(self):
        with pytest.raises(ConfigError):
            refresh_schedule(weight_bits=1)

    def test_model_validation(self):
        with pytest.raises(ConfigError):
            RetentionModel(tau_ref_s=0.0)
        with pytest.raises(ConfigError):
            RetentionModel(activation_energy_ev=-1.0)
