"""Tests for the per-PE / per-layer profiling context."""

import pytest

from repro.arch import Profiler, TridentAccelerator
from repro.errors import ConfigError


@pytest.fixture
def mapped(rng):
    acc = TridentAccelerator()
    acc.map_mlp([10, 14, 3])
    acc.set_weights([rng.uniform(-1, 1, (14, 10)), rng.uniform(-1, 1, (3, 14))])
    return acc


class TestProfiler:
    def test_report_unavailable_before_exit(self, mapped):
        prof = Profiler(mapped)
        with pytest.raises(ConfigError):
            prof.report
        with prof:
            with pytest.raises(ConfigError):
                prof.report

    def test_counts_only_region_events(self, mapped, rng):
        mapped.forward_batch(rng.uniform(-1, 1, (4, 10)))  # outside region
        with Profiler(mapped) as prof:
            mapped.forward_batch(rng.uniform(-1, 1, (8, 10)))
        assert prof.report.counters.symbols == 8 * 2
        assert prof.report.counters.bank_writes == 0
        assert prof.report.wall_time_s > 0

    def test_per_pe_and_per_layer_attribution(self, mapped, rng):
        with Profiler(mapped) as prof:
            mapped.forward_batch(rng.uniform(-1, 1, (6, 10)))
        report = prof.report
        assert len(report.per_pe) == len(mapped.pes)
        assert len(report.per_layer) == len(mapped.layers)
        assert all(p.symbols == 6 for p in report.per_pe)
        assert all(p.symbols == 6 * p.n_tiles for p in report.per_layer)
        total = sum(p.symbols for p in report.per_pe)
        assert total == report.counters.symbols

    def test_tiled_layer_aggregates_tiles(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([40, 24, 4])
        acc.set_weights(
            [rng.uniform(-1, 1, (24, 40)), rng.uniform(-1, 1, (4, 24))]
        )
        with Profiler(acc) as prof:
            acc.forward_batch(rng.uniform(-1, 1, (3, 40)))
        layer0 = prof.report.per_layer[0]
        assert layer0.n_tiles == 6
        assert layer0.symbols == 3 * 6

    def test_exception_skips_report(self, mapped):
        prof = Profiler(mapped)
        with pytest.raises(ValueError):
            with prof:
                raise ValueError("boom")
        with pytest.raises(ConfigError):
            prof.report

    def test_render_contains_tables(self, mapped, rng):
        with Profiler(mapped) as prof:
            mapped.forward_batch(rng.uniform(-1, 1, (4, 10)))
        text = prof.report.render("test region")
        assert "test region" in text
        assert "symbols" in text
        assert "PE" in text

    def test_symbols_per_second(self, mapped, rng):
        with Profiler(mapped) as prof:
            mapped.forward_batch(rng.uniform(-1, 1, (4, 10)))
        assert prof.report.symbols_per_second > 0

    def test_reusable_context(self, mapped, rng):
        prof = Profiler(mapped)
        with prof:
            mapped.forward(rng.uniform(-1, 1, 10))
        first = prof.report.counters.symbols
        with prof:
            mapped.forward_batch(rng.uniform(-1, 1, (3, 10)))
        assert first == 2
        assert prof.report.counters.symbols == 3 * 2
