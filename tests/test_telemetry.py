"""Tests for repro.telemetry: tracer, metrics, events, session, logging.

The load-bearing guarantees under test:

- spans nest correctly and carry hardware-event deltas;
- Chrome-trace and Prometheus exports are structurally valid (the same
  validators the CI smoke gate runs);
- disabled telemetry is the shared no-op fast path;
- enabling telemetry perturbs **nothing**: outputs, weights, and event
  counters are bit-identical with the session on or off, and the PR 3
  crash-resume bit-identity guarantee holds with tracing enabled.
"""

import json
import logging
import threading

import numpy as np
import pytest

from repro import telemetry
from repro.arch import Profiler, TridentAccelerator, TridentConfig
from repro.devices.program_verify import ProgramVerifyConfig
from repro.errors import ConfigError
from repro.faults import FaultManager, RepairConfig
from repro.nn.datasets import Dataset, make_blobs, standardize
from repro.runtime import ResilienceConfig, ResilientTrainer
from repro.telemetry.metrics import NULL_INSTRUMENT
from repro.telemetry.session import NULL_METRICS
from repro.telemetry.tracer import NULL_SPAN
from repro.training.insitu import InSituTrainer


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    """Every test starts and ends with telemetry disabled."""
    telemetry.disable()
    yield
    telemetry.disable()
    telemetry.reset_cli_logging()


def small_accelerator(seed=0, dims=(6, 8, 3), spare_rows=0, verify=False):
    rows = max(dims)
    acc = TridentAccelerator(
        config=TridentConfig(
            bank_rows=rows,
            bank_cols=rows,
            spare_rows=spare_rows,
            convergence_floor=0.0,
        ),
        seed=seed,
        program_verify=ProgramVerifyConfig() if verify else None,
    )
    acc.map_mlp(list(dims))
    rng = np.random.default_rng(seed + 1)
    acc.set_weights(
        [
            rng.normal(0.0, 0.4, (dims[i + 1], dims[i]))
            for i in range(len(dims) - 1)
        ]
    )
    return acc


# ---------------------------------------------------------------------------
class TestTracer:
    def test_span_records_name_and_duration(self):
        tracer = telemetry.Tracer()
        with tracer.span("work", key="value"):
            pass
        (record,) = tracer.records
        assert record.name == "work"
        assert record.attrs == {"key": "value"}
        assert record.duration_s >= 0.0
        assert record.parent_id is None

    def test_nesting_sets_parent(self):
        tracer = telemetry.Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id

    def test_span_ids_are_sequential_not_clock_derived(self):
        tracer = telemetry.Tracer()
        for _ in range(3):
            with tracer.span("s"):
                pass
        assert [r.span_id for r in tracer.records] == [1, 2, 3]

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            telemetry.Tracer().span("")

    def test_exception_recorded_and_propagated(self):
        tracer = telemetry.Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        (record,) = tracer.records
        assert record.attrs["error"] == "ValueError"

    def test_accelerator_span_carries_counter_deltas(self):
        acc = small_accelerator()
        tracer = telemetry.Tracer()
        xs = np.zeros((4, 6))
        with tracer.span("fwd", accelerator=acc):
            acc.forward_batch(xs)
        (record,) = tracer.records
        assert record.counters["symbols"] > 0
        assert record.counters["bank_writes"] == 0

    def test_detail_span_exposes_per_pe_delta(self):
        acc = small_accelerator()
        tracer = telemetry.Tracer()
        with tracer.span("fwd", accelerator=acc, detail=True) as span:
            acc.forward_batch(np.zeros((2, 6)))
        assert set(span.hardware.per_pe) == set(range(len(acc.pes)))
        assert sum(s.symbols for s in span.hardware.per_pe.values()) > 0

    def test_thread_spans_keep_independent_stacks(self):
        tracer = telemetry.Tracer()
        done = threading.Event()

        def worker():
            with tracer.span("thread_root"):
                done.wait(5)

        t = threading.Thread(target=worker)
        with tracer.span("main_root"):
            t.start()
            done.set()
            t.join()
        roots = [r for r in tracer.records if r.parent_id is None]
        assert {r.name for r in roots} == {"thread_root", "main_root"}
        assert len({r.thread for r in tracer.records}) == 2

    def test_clear_drops_records(self):
        tracer = telemetry.Tracer()
        with tracer.span("s"):
            pass
        tracer.clear()
        assert tracer.records == ()

    def test_coverage_full_when_children_tile_the_root(self):
        import time

        tracer = telemetry.Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                time.sleep(0.02)
            with tracer.span("b"):
                time.sleep(0.02)
        assert tracer.coverage() > 0.5
        assert tracer.coverage() <= 1.0

    def test_coverage_vacuous_without_roots(self):
        assert telemetry.Tracer().coverage() == 1.0

    def test_chrome_trace_is_schema_valid(self):
        tracer = telemetry.Tracer()
        acc = small_accelerator()
        with tracer.span("root"):
            with tracer.span("fwd", accelerator=acc, batch=2):
                acc.forward_batch(np.zeros((2, 6)))
        doc = tracer.to_chrome_trace()
        assert telemetry.validate_chrome_trace(doc) == []
        assert doc["traceEvents"][0]["cat"] == "repro"
        # Round-trips through JSON.
        assert telemetry.validate_chrome_trace(json.loads(json.dumps(doc))) == []

    def test_jsonl_lines_parse(self):
        tracer = telemetry.Tracer()
        with tracer.span("s", layer=3):
            pass
        (line,) = tracer.to_jsonl_lines()
        doc = json.loads(line)
        assert doc["name"] == "s"
        assert doc["attrs"] == {"layer": 3}

    def test_write_exports(self, tmp_path):
        tracer = telemetry.Tracer()
        with tracer.span("s"):
            pass
        trace = tracer.write_chrome_trace(tmp_path / "t.trace.json")
        jsonl = tracer.write_jsonl(tmp_path / "t.jsonl")
        assert json.loads(trace.read_text())["traceEvents"]
        assert json.loads(jsonl.read_text().splitlines()[0])["name"] == "s"


class TestChromeTraceValidator:
    def test_flags_malformed_documents(self):
        assert telemetry.validate_chrome_trace([]) != []
        assert telemetry.validate_chrome_trace({}) != []
        bad_event = {"traceEvents": [{"name": "", "ph": "Z"}]}
        problems = telemetry.validate_chrome_trace(bad_event)
        assert any("name" in p for p in problems)
        assert any("phase" in p for p in problems)

    def test_negative_timestamps_flagged(self):
        doc = {
            "traceEvents": [
                {"name": "x", "ph": "X", "ts": -1.0, "dur": 1.0,
                 "pid": 0, "tid": 0, "args": {}}
            ]
        }
        assert any("ts" in p for p in telemetry.validate_chrome_trace(doc))


# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_monotonic(self):
        reg = telemetry.MetricsRegistry()
        c = reg.counter("repro_things_total", "things")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ConfigError):
            c.inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        reg = telemetry.MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        assert reg.counter("a_total", tier="x") is not reg.counter("a_total")

    def test_kind_conflict_rejected(self):
        reg = telemetry.MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ConfigError):
            reg.gauge("x_total")

    def test_invalid_names_rejected(self):
        reg = telemetry.MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.counter("0bad")
        with pytest.raises(ConfigError):
            reg.counter("ok_total", **{"bad-label": "x"})

    def test_histogram_buckets_cumulative_in_export(self):
        reg = telemetry.MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        text = reg.to_prometheus()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="10"} 3' in text
        assert 'lat_seconds_bucket{le="+Inf"} 4' in text
        assert "lat_seconds_count 4" in text

    def test_histogram_bounds_must_increase(self):
        reg = telemetry.MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.histogram("h", buckets=(1.0, 1.0))

    def test_prometheus_round_trip(self):
        reg = telemetry.MetricsRegistry()
        reg.counter("repro_repairs_total", "repairs", tier="spare").inc(3)
        reg.gauge("repro_progress_ratio").set(0.5)
        samples = telemetry.parse_prometheus_text(reg.to_prometheus())
        assert samples['repro_repairs_total{tier="spare"}'] == 3
        assert samples["repro_progress_ratio"] == 0.5

    def test_parse_rejects_malformed_text(self):
        with pytest.raises(ValueError):
            telemetry.parse_prometheus_text("not a sample line !!!")

    def test_json_export_shape(self):
        reg = telemetry.MetricsRegistry()
        reg.counter("a_total").inc()
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        doc = reg.to_json()
        kinds = {m["name"]: m["kind"] for m in doc["metrics"]}
        assert kinds == {"a_total": "counter", "h_seconds": "histogram"}

    def test_label_values_escaped(self):
        reg = telemetry.MetricsRegistry()
        reg.counter("a_total", label='x"y\\z').inc()
        text = reg.to_prometheus()
        assert '\\"' in text and "\\\\" in text
        telemetry.parse_prometheus_text(text)  # still parseable


# ---------------------------------------------------------------------------
class TestEvents:
    def test_events_are_sequenced(self):
        log = telemetry.EventLog()
        log.emit("repair", tier="spare")
        log.emit("rollback", step=7)
        seqs = [e.seq for e in log.records]
        assert seqs == [1, 2]
        assert log.of_kind("rollback")[0].fields["step"] == 7

    def test_jsonl_export(self, tmp_path):
        log = telemetry.EventLog()
        log.emit("degradation", layer=0, tile=1)
        path = log.write_jsonl(tmp_path / "events.jsonl")
        doc = json.loads(path.read_text().splitlines()[0])
        assert doc["kind"] == "degradation"
        assert doc["layer"] == 0 and doc["tile"] == 1


# ---------------------------------------------------------------------------
class TestSession:
    def test_disabled_hooks_return_shared_noops(self):
        assert telemetry.trace_span("anything") is NULL_SPAN
        assert telemetry.counter("c_total") is NULL_INSTRUMENT
        assert telemetry.gauge("g") is NULL_INSTRUMENT
        assert telemetry.histogram("h") is NULL_INSTRUMENT
        assert telemetry.emit_event("kind") is None
        assert NULL_METRICS.counter("x") is NULL_INSTRUMENT

    def test_session_scopes_enablement(self):
        assert not telemetry.enabled()
        with telemetry.session() as t:
            assert telemetry.enabled()
            assert telemetry.active() is t
            with telemetry.trace_span("s"):
                pass
        assert not telemetry.enabled()
        assert [r.name for r in t.tracer.records] == ["s"]

    def test_well_known_counters_pre_registered(self):
        with telemetry.session() as t:
            text = t.metrics.to_prometheus()
        for name, _ in telemetry.WELL_KNOWN_COUNTERS:
            assert name in text
        for tier in telemetry.REPAIR_TIERS:
            assert f'repro_repairs_total{{tier="{tier}"}} 0' in text

    def test_forward_batch_feeds_session(self):
        acc = small_accelerator()
        with telemetry.session() as t:
            acc.forward_batch(np.zeros((4, 6)))
        names = [r.name for r in t.tracer.records]
        assert "forward_batch" in names
        assert "layer" in names
        samples = telemetry.parse_prometheus_text(t.metrics.to_prometheus())
        assert samples["repro_forward_batches_total"] == 1
        assert samples["repro_forward_samples_total"] == 4

    def test_train_step_feeds_session(self):
        acc = small_accelerator()
        trainer = InSituTrainer(acc, lr=0.05)
        xs = np.zeros((4, 6))
        ys = np.zeros(4, dtype=int)
        with telemetry.session() as t:
            trainer.train_step(xs, ys)
        names = [r.name for r in t.tracer.records]
        for expected in ("train_step", "backward_batch", "weight_update"):
            assert expected in names
        samples = telemetry.parse_prometheus_text(t.metrics.to_prometheus())
        assert samples["repro_train_steps_total"] == 1
        assert samples["repro_train_loss_count"] == 1


# ---------------------------------------------------------------------------
class TestScheduleSimTrace:
    def test_modeled_timeline_is_schema_valid(self):
        from repro.dataflow.schedule_sim import simulate_model
        from repro.nn.graph import Network
        from repro.nn.layers import Conv2D, Dense, TensorShape

        net = Network("tiny", TensorShape(8, 8, 3))
        net.add(Conv2D("c1", 4, kernel=3))
        net.add(Dense("fc", 10, fused_activation=False))
        sim = simulate_model(net, keep_events=True)
        doc = sim.to_chrome_trace()
        assert telemetry.validate_chrome_trace(doc) == []
        names = {ev["name"] for ev in doc["traceEvents"]}
        assert any(n.startswith("write c1/") for n in names)
        assert any(n.startswith("stream fc/") for n in names)
        # Every tile contributes a write slice and a stream slice.
        n_tiles = sum(layer.n_tiles for layer in sim.layers)
        assert len(doc["traceEvents"]) == 2 * n_tiles

    def test_layers_laid_out_sequentially(self):
        from repro.dataflow.schedule_sim import simulate_model
        from repro.nn.graph import Network
        from repro.nn.layers import Dense, TensorShape

        net = Network("two", TensorShape(1, 1, 32))
        net.add(Dense("a", 24, fused_activation=False))
        net.add(Dense("b", 8, fused_activation=False))
        sim = simulate_model(net, keep_events=True)
        events = sim.to_chrome_trace()["traceEvents"]
        end_of_a = max(
            ev["ts"] + ev["dur"] for ev in events if "a/" in ev["name"]
        )
        start_of_b = min(ev["ts"] for ev in events if "b/" in ev["name"])
        assert start_of_b >= sim.layers[0].makespan_s * 1e6 - 1e-6
        assert start_of_b >= end_of_a - 1e-6


class TestProfilerOnTracer:
    def test_profiler_spans_land_in_active_session(self):
        acc = small_accelerator()
        with telemetry.session() as t:
            with Profiler(acc) as prof:
                acc.forward_batch(np.zeros((2, 6)))
        names = [r.name for r in t.tracer.records]
        assert "profiled_region" in names
        assert prof.report.counters.symbols > 0

    def test_profiler_identical_with_and_without_session(self):
        def profile_once():
            acc = small_accelerator(seed=3)
            with Profiler(acc) as prof:
                acc.forward_batch(np.zeros((4, 6)))
            return prof.report

        # Wall time legitimately differs; everything event-derived must not.
        plain = profile_once()
        with telemetry.session():
            traced = profile_once()
        assert plain.counters.as_dict() == traced.counters.as_dict()
        assert plain.per_pe == traced.per_pe
        assert plain.per_layer == traced.per_layer


# ---------------------------------------------------------------------------
class TestLogging:
    def test_get_logger_prefixes(self):
        assert telemetry.get_logger("faults.repair").name == "repro.faults.repair"
        assert telemetry.get_logger("repro.x").name == "repro.x"

    def test_configure_levels(self):
        assert telemetry.configure_cli_logging(0) == logging.WARNING
        assert telemetry.configure_cli_logging(1) == logging.INFO
        assert telemetry.configure_cli_logging(2) == logging.DEBUG
        assert telemetry.configure_cli_logging(0, debug=True) == logging.DEBUG

    def test_configure_is_idempotent(self):
        telemetry.configure_cli_logging(1)
        telemetry.configure_cli_logging(1)
        root = logging.getLogger("repro")
        stream_handlers = [
            h for h in root.handlers
            if isinstance(h, logging.StreamHandler)
            and not isinstance(h, logging.NullHandler)
        ]
        assert len(stream_handlers) == 1

    def test_repair_ladder_logs(self, caplog):
        acc = small_accelerator(spare_rows=4, verify=True)
        acc.inject_stuck_faults(0.1, stuck_level=254)
        manager = FaultManager(acc, config=RepairConfig(policy="spare"))
        with caplog.at_level(logging.DEBUG, logger="repro.faults.repair"):
            manager.deploy([layer.weights.copy() for layer in acc.layers])
        assert any(
            "repair" in message for message in caplog.messages
        ), caplog.messages


# ---------------------------------------------------------------------------
def training_workload(with_faults=True):
    """Deterministic fault + training workload; returns its observables."""
    dims = (6, 8, 3)
    acc = small_accelerator(seed=11, dims=dims, spare_rows=4, verify=True)
    manager = None
    if with_faults:
        acc.inject_stuck_faults(0.05, stuck_level=254)
        manager = FaultManager(acc, config=RepairConfig(policy="spare"))
        manager.deploy([layer.weights.copy() for layer in acc.layers])
    trainer = InSituTrainer(acc, lr=0.05)
    raw = make_blobs(n_samples=48, n_features=6, n_classes=3, seed=5)
    data = Dataset(x=np.clip(standardize(raw.x) / 3, -1, 1), y=raw.y)
    losses = [
        float(trainer.train_step(data.x[i * 8 : (i + 1) * 8],
                                 data.y[i * 8 : (i + 1) * 8]))
        for i in range(4)
    ]
    outputs = acc.forward_batch(data.x)
    return {
        "losses": losses,
        "outputs": outputs,
        "weights": [layer.weights.copy() for layer in acc.layers],
        "counters": acc.counters.as_dict(),
        "repairs": None if manager is None else manager.log.as_dict(),
    }


class TestNonPerturbation:
    """Telemetry on vs off must be bit-identical — the core guarantee."""

    def test_workload_bit_identical_with_telemetry(self):
        baseline = training_workload()
        with telemetry.session() as t:
            traced = training_workload()
        assert traced["losses"] == baseline["losses"]
        assert np.array_equal(traced["outputs"], baseline["outputs"])
        for w_traced, w_base in zip(traced["weights"], baseline["weights"]):
            assert np.array_equal(w_traced, w_base)
        assert traced["counters"] == baseline["counters"]
        assert traced["repairs"] == baseline["repairs"]
        # ...and the session actually observed the run.
        assert len(t.tracer.records) > 0

    def test_crash_resume_bit_identical_with_tracing_on(self, tmp_path):
        """The PR 3 resume guarantee survives an enabled tracer."""

        def run(directory, telemetry_on, **kwargs):
            acc = small_accelerator(seed=21, spare_rows=2, verify=True)
            trainer = ResilientTrainer(
                InSituTrainer(acc, lr=0.05),
                directory,
                config=ResilienceConfig(checkpoint_every=2),
            )
            raw = make_blobs(n_samples=40, n_features=6, n_classes=3, seed=9)
            data = Dataset(x=np.clip(standardize(raw.x) / 3, -1, 1), y=raw.y)
            if telemetry_on:
                with telemetry.session():
                    report = trainer.run(
                        data, steps=8, batch_size=8, seed=13, **kwargs
                    )
            else:
                report = trainer.run(
                    data, steps=8, batch_size=8, seed=13, **kwargs
                )
            return report, [layer.weights.copy() for layer in acc.layers]

        baseline, base_weights = run(tmp_path / "plain", telemetry_on=False)
        crashed, _ = run(
            tmp_path / "traced", telemetry_on=True, max_steps_this_run=3
        )
        assert not crashed.completed
        resumed, resumed_weights = run(
            tmp_path / "traced", telemetry_on=True, resume=True
        )
        assert resumed.completed
        assert resumed.losses == baseline.losses
        for w_resumed, w_base in zip(resumed_weights, base_weights):
            assert np.array_equal(w_resumed, w_base)


# ---------------------------------------------------------------------------
class TestTimedGauges:
    def test_set_at_records_bounded_samples(self):
        from repro.telemetry.metrics import GAUGE_SAMPLE_LIMIT

        t = telemetry.enable()
        g = t.metrics.gauge("repro_test_gauge")
        for i in range(GAUGE_SAMPLE_LIMIT + 10):
            g.set_at(float(i), i * 1e-3)
        samples = g.samples()
        assert len(samples) == GAUGE_SAMPLE_LIMIT
        assert samples[-1] == ((GAUGE_SAMPLE_LIMIT + 9) * 1e-3,
                               float(GAUGE_SAMPLE_LIMIT + 9))
        assert g.value == float(GAUGE_SAMPLE_LIMIT + 9)

    def test_timed_samples_exported_in_json(self):
        t = telemetry.enable()
        t.metrics.gauge("repro_test_gauge").set_at(2.5, 1e-6)
        record = next(
            r for r in t.metrics.to_json()["metrics"]
            if r["name"] == "repro_test_gauge"
        )
        assert json.loads(json.dumps(record))["samples"] == [[1e-6, 2.5]]

    def test_null_instrument_accepts_set_at(self):
        NULL_INSTRUMENT.set_at(1.0, 0.0)  # must not raise


class TestMetricThreadSafety:
    """Satellite: instrument updates are exact under worker threads."""

    def test_concurrent_hammer_counts_exactly(self):
        t = telemetry.enable()
        counter = t.metrics.counter("repro_hammer_total")
        gauge = t.metrics.gauge("repro_hammer_gauge")
        hist = t.metrics.histogram(
            "repro_hammer_seconds", buckets=(0.25, 0.5, 1.0)
        )
        n_threads, n_iter = 8, 2000
        start = threading.Barrier(n_threads)

        def hammer(k):
            start.wait()
            for i in range(n_iter):
                counter.inc()
                gauge.set_at(float(i), i * 1e-9)
                hist.observe((i % 4) / 4.0)

        threads = [
            threading.Thread(target=hammer, args=(k,)) for k in range(n_threads)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert counter.value == n_threads * n_iter
        buckets, total, count = hist.snapshot()
        assert count == n_threads * n_iter
        assert sum(buckets) == count  # every observation in exactly one bucket
        assert total == pytest.approx(n_threads * n_iter * (0 + 0.25 + 0.5 + 0.75) / 4)

    def test_concurrent_creation_returns_one_instrument(self):
        t = telemetry.enable()
        seen = []
        start = threading.Barrier(8)

        def create():
            start.wait()
            seen.append(t.metrics.counter("repro_create_total"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert all(instrument is seen[0] for instrument in seen)


# ---------------------------------------------------------------------------
class TestPowerStreaming:
    """Satellite: live power-trace samples stream as timed gauge updates."""

    def test_forward_batch_streams_power_samples(self):
        acc = small_accelerator()
        with telemetry.session() as t:
            acc.forward_batch(np.zeros((4, 6)))
            acc.forward_batch(np.zeros((4, 6)))
        gauge = t.metrics.gauge("repro_power_draw_w")
        samples = gauge.samples()
        assert len(samples) == 2
        times = [s[0] for s in samples]
        assert times == sorted(times) and times[0] > 0
        assert all(power > 0 for _, power in samples)

    def test_train_step_streams_power_samples(self):
        acc = small_accelerator(verify=True)
        trainer = InSituTrainer(acc, lr=0.05)
        x = np.zeros((4, 6))
        y = np.array([0, 1, 2, 0])
        with telemetry.session() as t:
            trainer.train_step(x, y)
        # At least the step-level sample (the inner forward emits its own).
        samples = t.metrics.gauge("repro_power_draw_w").samples()
        assert samples
        times = [s[0] for s in samples]
        assert times == sorted(times)
        assert all(power > 0 for _, power in samples)

    @staticmethod
    def modeled_trace(n_samples=64):
        from repro.dataflow import PhotonicArch, power_trace
        from repro.dataflow.schedule_sim import simulate_layer
        from repro.dataflow.tiling import TileSchedule
        from repro.nn.layers import GEMMShape

        arch = PhotonicArch.trident()
        sim = simulate_layer(
            "l", TileSchedule(GEMMShape(m=64, k=16, n=50), 16, 16), arch
        )
        return power_trace(sim, arch, n_samples=n_samples)

    def test_stream_power_trace_replays_samples(self):
        from repro.dataflow import stream_power_trace

        trace = self.modeled_trace()
        with telemetry.session() as t:
            emitted = stream_power_trace(trace, t_offset_s=1.0)
        assert emitted == trace.times_s.size
        samples = t.metrics.gauge("repro_power_draw_w").samples()
        assert len(samples) == min(emitted, 4096)
        assert samples[0][0] >= 1.0

    def test_streaming_disabled_is_free_and_unperturbing(self):
        from repro.dataflow import stream_power_trace

        trace = self.modeled_trace()
        assert stream_power_trace(trace) == 0  # no session: nothing emitted

        def outputs(seed):
            acc = small_accelerator(seed=seed)
            return acc.forward_batch(np.linspace(-1, 1, 24).reshape(4, 6))

        bare = outputs(5)
        with telemetry.session():
            instrumented = outputs(5)
        assert np.array_equal(bare, instrumented)


# ---------------------------------------------------------------------------
class TestOtlpExport:
    def session_doc(self):
        with telemetry.session() as t:
            with telemetry.trace_span("outer", phase="test"):
                with telemetry.trace_span("inner", depth=1):
                    pass
            t.metrics.counter("repro_otlp_total", "c").inc(3)
            t.metrics.gauge("repro_otlp_gauge", "g").set(2.5)
            h = t.metrics.histogram("repro_otlp_hist", "h", buckets=[1.0, 2.0])
            for v in (0.5, 1.5, 99.0):
                h.observe(v)
        return t

    def test_span_export_is_valid_and_linked(self):
        t = self.session_doc()
        doc = telemetry.spans_to_otlp(t.tracer.records, service_name="svc")
        assert telemetry.validate_otlp(doc) == []
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parentSpanId"] == by_name["outer"]["spanId"]
        assert all(s["traceId"] == spans[0]["traceId"] for s in spans)
        for span in spans:
            assert int(span["endTimeUnixNano"]) >= int(span["startTimeUnixNano"])

    def test_span_export_is_deterministic(self):
        t = self.session_doc()
        a = telemetry.spans_to_otlp(t.tracer.records)
        b = telemetry.spans_to_otlp(t.tracer.records)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_metrics_export_is_valid(self):
        t = self.session_doc()
        doc = telemetry.metrics_to_otlp(t.metrics, service_name="svc")
        assert telemetry.validate_otlp(doc) == []
        metrics = {
            m["name"]: m
            for m in doc["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        }
        counter = metrics["repro_otlp_total"]["sum"]
        assert counter["isMonotonic"]
        assert counter["dataPoints"][0]["asInt"] == "3"
        gauge = metrics["repro_otlp_gauge"]["gauge"]
        assert gauge["dataPoints"][0]["asDouble"] == 2.5
        hist = metrics["repro_otlp_hist"]["histogram"]["dataPoints"][0]
        assert hist["count"] == "3"
        # bucketCounts carries the +inf overflow bucket (the 99.0 sample).
        assert len(hist["bucketCounts"]) == len(hist["explicitBounds"]) + 1
        assert hist["bucketCounts"][-1] == "1"

    def test_combined_document_validates(self):
        t = self.session_doc()
        doc = {
            **telemetry.spans_to_otlp(t.tracer.records),
            **telemetry.metrics_to_otlp(t.metrics),
        }
        assert telemetry.validate_otlp(doc) == []

    def test_validator_rejects_malformed_documents(self):
        assert telemetry.validate_otlp([]) != []
        assert telemetry.validate_otlp({}) != []
        bad_span = {
            "resourceSpans": [
                {
                    "scopeSpans": [
                        {
                            "spans": [
                                {
                                    "name": "s",
                                    "traceId": "zz",
                                    "spanId": "0" * 16,
                                    "startTimeUnixNano": "20",
                                    "endTimeUnixNano": "10",
                                    "attributes": [{"key": 1}],
                                }
                            ]
                        }
                    ]
                }
            ]
        }
        problems = telemetry.validate_otlp(bad_span)
        assert any("traceId" in p for p in problems)
        assert any("ends before" in p for p in problems)
        assert any("attributes" in p for p in problems)
        bad_metric = {
            "resourceMetrics": [
                {
                    "scopeMetrics": [
                        {
                            "metrics": [
                                {"name": "two", "sum": {}, "gauge": {}},
                                {
                                    "name": "hist",
                                    "histogram": {
                                        "dataPoints": [
                                            {
                                                "bucketCounts": ["1"],
                                                "explicitBounds": [1.0, 2.0],
                                            }
                                        ]
                                    },
                                },
                            ]
                        }
                    ]
                }
            ]
        }
        problems = telemetry.validate_otlp(bad_metric)
        assert any("exactly one of" in p for p in problems)
        assert any("bucketCounts" in p for p in problems)

    def test_protobuf_encode_is_gated(self):
        t = self.session_doc()
        doc = telemetry.spans_to_otlp(t.tracer.records)
        if telemetry.otlp_protobuf_available():
            assert isinstance(telemetry.encode_protobuf(doc), bytes)
        else:
            with pytest.raises(ConfigError, match="opentelemetry-proto"):
                telemetry.encode_protobuf(doc)
