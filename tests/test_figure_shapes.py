"""Qualitative shape tests on the regenerated figures.

The calibration (EXPERIMENTS.md) pins the paper's *averages*; these tests
pin the *uncalibrated structure* — per-model orderings and relationships
that emerge from the model rather than from fitted constants.  They are the
regression net for the reproduction's actual content.
"""

import pytest

from repro.eval.figures import fig4_photonic_energy, fig6_inferences_per_second


@pytest.fixture(scope="module")
def fig4():
    return fig4_photonic_energy()


@pytest.fixture(scope="module")
def fig6():
    return fig6_inferences_per_second()


class TestFig4Shapes:
    def test_vgg_is_most_expensive_on_every_architecture(self, fig4):
        """15.5 GMACs dominate: VGG-16 costs the most energy everywhere."""
        for name, series in fig4.series.items():
            assert max(series, key=series.get) == "vgg16", name

    def test_mobilenet_is_cheapest_on_every_architecture(self, fig4):
        for name, series in fig4.series.items():
            assert min(series, key=series.get) == "mobilenet_v2", name

    def test_energy_ordering_tracks_mac_count_for_dense_models(self, fig4):
        """Among the dense CNNs, energy follows MACs (alexnet < googlenet
        < resnet50 < vgg16) on Trident."""
        trident = fig4.series["trident"]
        assert (
            trident["alexnet"]
            < trident["googlenet"]
            < trident["resnet50"]
            < trident["vgg16"]
        )

    def test_crosslight_and_pixel_worse_than_deap_everywhere(self, fig4):
        """The paper's Sec. V-A: the VCSEL/MZM extras cost more than
        DEAP's converters, on every model."""
        for model in fig4.series["trident"]:
            assert fig4.series["crosslight"][model] > fig4.series["deap-cnn"][model]
            assert fig4.series["pixel"][model] > fig4.series["deap-cnn"][model]


class TestFig6Shapes:
    def test_alexnet_fastest_dense_model_on_photonics(self, fig6):
        """Fewest MACs among dense models -> highest inf/s on Trident."""
        trident = fig6.series["trident"]
        dense = {m: trident[m] for m in ("alexnet", "googlenet", "resnet50", "vgg16")}
        assert max(dense, key=dense.get) == "alexnet"

    def test_vgg_slowest_everywhere(self, fig6):
        for name, series in fig6.series.items():
            assert min(series, key=series.get) == "vgg16", name

    def test_photonic_ranking_stable_across_models(self, fig6):
        """Trident > DEAP > {CrossLight, PIXEL} on every model."""
        for model in fig6.series["trident"]:
            t = fig6.series["trident"][model]
            d = fig6.series["deap-cnn"][model]
            c = fig6.series["crosslight"][model]
            p = fig6.series["pixel"][model]
            assert t > d > max(c, p), model

    def test_electronic_ranking_follows_sustained_tops(self, fig6):
        """Xavier > TB96 > Coral on every model (spec + utilization)."""
        for model in fig6.series["trident"]:
            assert (
                fig6.series["agx-xavier"][model]
                > fig6.series["tb96-ai"][model]
                > fig6.series["google-coral"][model]
            ), model

    def test_mobilenet_is_tridents_weakest_advantage(self, fig6):
        """Depthwise occupancy: Trident's margin over Xavier is smallest
        (negative) on MobileNetV2 — the documented deviation's signature."""
        margins = {
            m: fig6.series["trident"][m] / fig6.series["agx-xavier"][m]
            for m in fig6.series["trident"]
        }
        assert min(margins, key=margins.get) == "mobilenet_v2"

    def test_effective_tops_consistency(self, fig6):
        """Trident's ips imply effective TOPS below its 7.8 peak on every
        model (no model can exceed the roofline)."""
        from repro.nn import build_model

        for model, ips in fig6.series["trident"].items():
            macs = build_model(model).stats().total_macs
            eff_tops = 2 * macs * ips / 1e12
            assert eff_tops <= 7.8 + 0.05, model
