"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def run(capsys):
    def _run(*argv):
        code = main(list(argv))
        out = capsys.readouterr().out
        return code, out

    return _run


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "7"])

    def test_fig_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "1"])


class TestTables:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_tables_render(self, run, n):
        code, out = run("table", str(n))
        assert code == 0
        assert "Table" in out

    def test_table3_contains_tuning_row(self, run):
        _, out = run("table", "3")
        assert "GST MRR Tuning" in out
        assert "83.3" in out


class TestFigs:
    def test_fig3_curve(self, run):
        code, out = run("fig", "3")
        assert code == 0
        assert "430" in out or "activation" in out.lower()

    def test_fig5_area(self, run):
        code, out = run("fig", "5")
        assert code == 0
        assert "TIA" in out

    def test_fig4_energy_series(self, run):
        code, out = run("fig", "4")
        assert code == 0
        for name in ("trident", "deap-cnn", "crosslight", "pixel"):
            assert name in out


class TestOtherCommands:
    def test_models(self, run):
        code, out = run("models")
        assert code == 0
        for name in ("alexnet", "vgg16", "googlenet", "resnet50", "mobilenet_v2"):
            assert name in out

    def test_compare(self, run):
        code, out = run("compare", "mobilenet_v2", "--budget", "30", "--batch", "32")
        assert code == 0
        assert "trident" in out
        assert "agx-xavier" in out

    def test_train_plan(self, run):
        code, out = run("train-plan", "googlenet", "--samples", "1000")
        assert code == 0
        assert "outer product" in out
        assert "trident" in out

    def test_link_budget(self, run):
        code, out = run("link-budget", "--rows", "8", "--cols", "8")
        assert code == 0
        assert "SNR" in out

    def test_endurance(self, run):
        code, out = run("endurance", "googlenet")
        assert code == 0
        assert "activation" in out

    def test_profile_parity_gate(self, run):
        """The profile command exercises the batched/per-sample parity
        guarantee end to end and exits 0 only when it holds."""
        code, out = run("profile", "--dims", "20", "12", "3", "--batch", "8")
        assert code == 0
        assert "outputs match: True" in out
        assert "event counters match: True" in out
        assert "symbols" in out

    def test_profile_tiled_network(self, run):
        code, out = run("profile", "--dims", "40", "24", "4", "--batch", "4")
        assert code == 0
        assert "PARITY VIOLATION" not in out


class TestReport:
    def test_report_summarizes_everything(self, run):
        code, out = run("report")
        assert code == 0
        assert "34 comparisons" in out
        assert "DEVIATION" in out  # documented rows flagged


class TestSummaryModule:
    def test_collect_and_gate(self):
        from repro.eval.summary import ReproductionSummary

        summary = ReproductionSummary.collect()
        assert len(summary.results) == 34
        # The documented deviations are excluded from the gate.
        assert len(summary.deviations()) == 2
        assert summary.max_gated_error() < 0.16
        # And the gate would fail if they were included.
        worst_all = max(r.within for r in summary.results)
        assert worst_all > summary.max_gated_error()


class TestLayers:
    def test_layers_command(self, run):
        code, out = run("layers", "alexnet", "--top", "4")
        assert code == 0
        assert "TOTAL" in out
        assert "alexnet on trident" in out

    def test_layers_baseline(self, run):
        code, out = run("layers", "googlenet", "--arch", "deap-cnn", "--top", "3")
        assert code == 0
        assert "deap-cnn" in out


class TestAllCommand:
    def test_all_regenerates_everything(self, run):
        code, out = run("all")
        assert code == 0
        for marker in ("Table I", "Table III", "Table IV", "Table V",
                       "Fig 3", "Fig 4", "Fig 5", "Fig 6"):
            assert marker in out, marker


class TestExport:
    def test_export_writes_all_csvs(self, run, tmp_path):
        code, out = run("export", "--dir", str(tmp_path))
        assert code == 0
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {
            "table1_tuning.csv", "table2_mapping.csv", "table3_power.csv",
            "table4_tops.csv", "table5_training.csv",
            "fig3_activation.csv", "fig4_energy_j.csv", "fig5_area.csv",
            "fig6_inferences_per_second.csv", "paper_vs_measured.csv",
        }

    def test_csv_contents_parse(self, tmp_path):
        import csv

        from repro.eval.export import export_all

        export_all(tmp_path)
        with (tmp_path / "fig6_inferences_per_second.csv").open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "model"
        assert len(rows) == 6  # header + 5 models
        # Every numeric field parses.
        for row in rows[1:]:
            for cell in row[1:]:
                float(cell)

    def test_export_rejects_file_target(self, tmp_path):
        from repro.errors import ConfigError
        from repro.eval.export import export_all

        target = tmp_path / "occupied"
        target.write_text("not a dir")
        with pytest.raises(ConfigError):
            export_all(target)


class TestServeCommand:
    def test_smoke_gate_passes(self, run, tmp_path, capsys):
        code, out = run(
            "serve", "--smoke", "--out", str(tmp_path / "serve.trace.json")
        )
        assert code == 0
        assert "serving summary" in out
        assert "FAIL" not in out
        for check in (
            "request conservation",
            "breaker tripped on degradation",
            "breaker restored via half-open probe",
            "replay is bit-identical",
            "chrome trace schema valid",
            "serving + power metrics exposed",
        ):
            assert check in out, check
        assert (tmp_path / "serve.trace.json").exists()
        assert (tmp_path / "serve.metrics.prom").exists()
        assert (tmp_path / "serve.events.jsonl").exists()

    def test_no_active_session_leaks_after_serve(self, run, tmp_path):
        from repro import telemetry

        run("serve", "--smoke", "--out", str(tmp_path / "t.trace.json"))
        assert not telemetry.enabled()


class TestErrorHygiene:
    """Domain errors exit 2 with one structured line, never a traceback."""

    def _run(self, capsys, *argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_bad_serving_config_exits_2_with_one_line(self, capsys):
        code, out, err = self._run(capsys, "serve", "--dims", "5")
        assert code == 2
        assert err.startswith("repro: error: ServingError:")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err + out

    def test_fault_error_exits_2(self, capsys, monkeypatch):
        import argparse

        from repro import cli
        from repro.errors import FaultError

        def boom(args):
            raise FaultError("bank 3 beyond repair")

        parser = argparse.ArgumentParser()
        parser.add_argument("-v", "--verbose", action="count", default=0)
        parser.add_argument("--debug", action="store_true")
        parser.set_defaults(func=boom, command="boom")
        monkeypatch.setattr(cli, "build_parser", lambda: parser)
        code, _, err = self._run(capsys)
        assert code == 2
        assert err == "repro: error: FaultError: bank 3 beyond repair\n"

    def test_repair_error_exits_2(self, capsys, monkeypatch):
        import argparse

        from repro import cli
        from repro.errors import RepairError

        parser = argparse.ArgumentParser()
        parser.add_argument("-v", "--verbose", action="count", default=0)
        parser.add_argument("--debug", action="store_true")
        parser.set_defaults(
            func=lambda args: (_ for _ in ()).throw(
                RepairError("spare pool exhausted")
            ),
            command="boom",
        )
        monkeypatch.setattr(cli, "build_parser", lambda: parser)
        code, _, err = self._run(capsys)
        assert code == 2
        assert "RepairError: spare pool exhausted" in err

    def test_corrupt_checkpoint_reports_invalid_not_traceback(
        self, capsys, tmp_path
    ):
        path = tmp_path / "ckpt.json"
        path.write_text("{not json at all")
        code, out, err = self._run(capsys, "checkpoint", str(path))
        assert code == 1
        assert "Traceback" not in err + out
        assert "False" in out  # valid  False
