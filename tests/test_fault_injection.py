"""Failure-injection tests: stuck-at PCM cells.

Worn-out PCM cells stop switching and hold one level forever.  These tests
exercise the fault machinery and measure graceful degradation — the
yield/fault-tolerance story an adopter of the architecture needs.
"""

import numpy as np
import pytest

from repro import TridentAccelerator
from repro.arch.weight_bank import WeightBank
from repro.errors import ProgrammingError
from repro.nn.datasets import Dataset, make_blobs, standardize
from repro.nn.reference import DigitalMLP


class TestInjection:
    def test_fraction_zero_is_noop(self, rng):
        bank = WeightBank()
        assert bank.inject_stuck_faults(0.0, rng) == 0
        assert bank.stuck_fraction == 0.0

    def test_fraction_one_sticks_everything(self, rng):
        bank = WeightBank()
        n = bank.inject_stuck_faults(1.0, rng)
        assert n == 256
        assert bank.stuck_fraction == 1.0

    def test_default_stuck_level_is_weight_zero(self, rng):
        bank = WeightBank()
        bank.program(np.full((16, 16), 0.9))
        bank.inject_stuck_faults(1.0, rng)
        assert np.allclose(bank.realized_weights, 0.0, atol=bank.weight_step)

    def test_stuck_cells_survive_reprogramming(self, rng):
        bank = WeightBank()
        w = rng.uniform(-1, 1, (16, 16))
        bank.program(w)
        bank.inject_stuck_faults(0.2, rng)
        frozen = bank.realized_weights
        bank.program(rng.uniform(-1, 1, (16, 16)))
        after = bank.realized_weights
        stuck = frozen != after
        # At least the stuck cells kept their values.
        assert bank.stuck_fraction > 0.1
        assert np.isclose(after, frozen).mean() >= bank.stuck_fraction

    def test_stuck_at_extreme_levels(self, rng):
        bank = WeightBank()
        bank.program(np.zeros((16, 16)))
        bank.inject_stuck_faults(1.0, rng, stuck_level=254)
        assert np.allclose(bank.realized_weights, 1.0)

    def test_repeated_injection_accumulates(self, rng):
        bank = WeightBank()
        first = bank.inject_stuck_faults(0.3, rng)
        second = bank.inject_stuck_faults(0.3, rng)
        assert bank.stuck_fraction == pytest.approx((first + second) / 256)

    def test_validation(self, rng):
        bank = WeightBank()
        with pytest.raises(ProgrammingError):
            bank.inject_stuck_faults(1.5, rng)
        with pytest.raises(ProgrammingError):
            bank.inject_stuck_faults(0.1, rng, stuck_level=300)

    def test_unprogrammed_cells_stay_excluded(self, rng):
        bank = WeightBank()
        bank.program(rng.uniform(-1, 1, (4, 4)))  # partial occupancy
        bank.inject_stuck_faults(1.0, rng, stuck_level=254)
        # Cells outside the programmed block stay at 0 in the MVM view.
        assert np.all(bank.realized_weights[4:, :] == 0.0)

    def test_physical_levels_track_stuck_state_everywhere(self, rng):
        """State-consistency invariant: _levels is the *physical* ring
        state, so off-block stuck cells hold their stuck level even though
        the MVM view excludes them (module docstring)."""
        bank = WeightBank()
        bank.program(rng.uniform(-1, 1, (4, 4)))
        bank.inject_stuck_faults(1.0, rng, stuck_level=254)
        assert np.all(bank.physical_levels == 254)
        # ... and re-programming the block does not shake stuck cells loose.
        bank.program(rng.uniform(-1, 1, (4, 4)))
        assert np.all(bank.physical_levels == 254)
        assert np.all(bank.realized_weights[4:, :] == 0.0)

    def test_in_block_stuck_levels_consistent_with_realized(self, rng):
        """Inside the programmed block, level / realized / mask must agree:
        the realized weight is exactly the dequantized stuck level."""
        bank = WeightBank()
        bank.program(rng.uniform(-1, 1, (16, 16)))
        bank.inject_stuck_faults(0.3, rng, stuck_level=200)
        bank.program(rng.uniform(-1, 1, (16, 16)))
        stuck = bank.physical_levels == 200
        assert stuck.any()
        expected = 2 * 200 / (bank.levels - 1) - 1
        assert np.allclose(bank.realized_weights[stuck], expected)


class TestGracefulDegradation:
    @pytest.fixture(scope="class")
    def task(self):
        data = make_blobs(n_samples=300, n_features=10, n_classes=3, spread=1.2, seed=5)
        data = Dataset(x=np.clip(standardize(data.x) / 3, -1, 1), y=data.y)
        train, test = data.split(0.8, seed=1)
        mlp = DigitalMLP([10, 14, 3], activation="gst", seed=7)
        for epoch in range(8):
            for xb, yb in train.batches(16, seed=epoch):
                mlp.train_step(xb, yb, lr=0.4)
        return mlp, test

    def _deployed_accuracy(self, mlp, test, fault_fraction, seed):
        acc = TridentAccelerator()
        acc.map_mlp([10, 14, 3])
        rng = np.random.default_rng(seed)
        for pe in acc.pes:
            pe.bank.inject_stuck_faults(fault_fraction, rng)
        acc.set_weights([w.copy() for w in mlp.weights])
        pred = np.argmax(acc.forward_batch(test.x), axis=1)
        return float(np.mean(pred == test.y))

    def test_small_fault_rates_degrade_gracefully(self, task):
        mlp, test = task
        clean = self._deployed_accuracy(mlp, test, 0.0, seed=0)
        mild = np.mean(
            [self._deployed_accuracy(mlp, test, 0.02, seed=s) for s in range(5)]
        )
        # 2 % stuck-at-zero cells cost only a few points.
        assert mild >= clean - 0.1

    def test_heavy_fault_rates_collapse(self, task):
        mlp, test = task
        heavy = np.mean(
            [self._deployed_accuracy(mlp, test, 0.6, seed=s) for s in range(3)]
        )
        clean = self._deployed_accuracy(mlp, test, 0.0, seed=0)
        assert heavy < clean

    def test_monotone_on_average(self, task):
        mlp, test = task
        levels = [0.0, 0.05, 0.3, 0.8]
        means = [
            np.mean(
                [self._deployed_accuracy(mlp, test, f, seed=s) for s in range(4)]
            )
            for f in levels
        ]
        assert means[0] >= means[-1]
        assert means[1] >= means[3]
