"""Tests for in-situ photonic backpropagation."""

import numpy as np
import pytest

from repro.arch.accelerator import TridentAccelerator
from repro.devices.noise import NoiseModel
from repro.errors import MappingError, ShapeError
from repro.nn.datasets import Dataset, make_blobs, standardize
from repro.nn.reference import DigitalMLP, cross_entropy_loss
from repro.training.insitu import InSituTrainer


def make_accelerator(dims, seed=0, noise=None):
    acc = TridentAccelerator(noise=noise)
    acc.map_mlp(dims)
    mlp = DigitalMLP(dims, activation="gst", seed=seed)
    acc.set_weights([w.copy() for w in mlp.weights])
    return acc, mlp


@pytest.fixture
def blob_data():
    data = make_blobs(n_samples=240, n_features=8, n_classes=3, spread=0.7, seed=1)
    data = Dataset(x=np.clip(standardize(data.x) / 3, -1, 1), y=data.y)
    return data.split(0.8, seed=0)


class TestConstruction:
    def test_requires_mapped_network(self):
        with pytest.raises(MappingError):
            InSituTrainer(TridentAccelerator())

    def test_rejects_tiled_layers(self):
        acc = TridentAccelerator()
        acc.map_mlp([40, 24, 4])  # multi-tile layers
        with pytest.raises(MappingError):
            InSituTrainer(acc)

    def test_rejects_bad_lr(self):
        acc, _ = make_accelerator([8, 4])
        with pytest.raises(MappingError):
            InSituTrainer(acc, lr=0.0)


class TestGradientFidelity:
    def test_photonic_gradients_match_digital(self):
        """The three photonic passes must reproduce Eqs. (1)-(3) up to
        quantization error."""
        dims = [8, 10, 4]
        acc, mlp = make_accelerator(dims, seed=3)
        trainer = InSituTrainer(acc, lr=0.1)
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, 8)
        label = 2

        logits_hw = acc.forward(x, record=True)
        _, grad = cross_entropy_loss(logits_hw[None, :], np.array([label]))
        grads_hw = trainer.backward_sample(grad[0])

        grads_ref = mlp.gradients(x[None, :], grad).weights
        for g_hw, g_ref in zip(grads_hw, grads_ref):
            assert g_hw.shape == g_ref.shape
            assert np.max(np.abs(g_hw - g_ref)) < 0.05

    def test_backward_requires_recorded_forward(self):
        acc, _ = make_accelerator([8, 4])
        trainer = InSituTrainer(acc)
        with pytest.raises(MappingError):
            trainer.backward_sample(np.zeros(4))

    def test_backward_shape_checked(self):
        acc, _ = make_accelerator([8, 4])
        trainer = InSituTrainer(acc)
        acc.forward(np.zeros(8), record=True)
        with pytest.raises(ShapeError):
            trainer.backward_sample(np.zeros(5))


class TestTrainStep:
    def test_reduces_loss(self, blob_data):
        train, _ = blob_data
        acc, _ = make_accelerator([8, 12, 3], seed=2)
        trainer = InSituTrainer(acc, lr=0.3)
        xb, yb = train.x[:32], train.y[:32]
        first = trainer.train_step(xb, yb)
        for _ in range(8):
            last = trainer.train_step(xb, yb)
        assert last < first

    def test_weights_stay_on_quantized_grid(self, blob_data):
        """After an update the programmed weights are re-quantized — the
        8-bit constraint the paper's training argument hinges on."""
        train, _ = blob_data
        acc, _ = make_accelerator([8, 12, 3], seed=2)
        trainer = InSituTrainer(acc, lr=0.3)
        trainer.train_step(train.x[:16], train.y[:16])
        for layer, pe_index in zip(acc.layers, range(len(acc.pes))):
            bank = acc.pes[layer.tiles[0][4]].bank
            realized = bank.realized_weights[: layer.out_dim, : layer.in_dim]
            levels = (realized + 1) / 2 * (bank.levels - 1)
            assert np.allclose(levels, np.rint(levels), atol=1e-6)

    def test_batch_shape_mismatch_rejected(self):
        acc, _ = make_accelerator([8, 4])
        trainer = InSituTrainer(acc)
        with pytest.raises(ShapeError):
            trainer.train_step(np.zeros((4, 8)), np.zeros(3, dtype=int))

    def test_hardware_events_accumulate(self, blob_data):
        train, _ = blob_data
        acc, _ = make_accelerator([8, 12, 3], seed=2)
        trainer = InSituTrainer(acc, lr=0.3)
        trainer.train_step(train.x[:8], train.y[:8])
        # Training is write-heavy even batched: every sample still pays its
        # outer-product bank program, plus the grouped W^T and update writes.
        assert acc.counters.bank_writes > 8
        assert acc.counters.mode_switches > 0
        assert acc.energy_estimate_j() > 0


class TestEndToEnd:
    def test_learns_blobs_to_high_accuracy(self, blob_data):
        train, test = blob_data
        acc, _ = make_accelerator([8, 12, 3], seed=2)
        trainer = InSituTrainer(acc, lr=0.3)
        from repro.training.trainer import train_classifier

        hist = train_classifier(trainer, train, test, epochs=6, batch_size=16)
        assert hist.final_test_accuracy > 0.85

    def test_tracks_digital_twin(self, blob_data):
        """In-situ training must land close to an identically-initialized
        digital run (the no-mismatch property)."""
        train, test = blob_data
        dims = [8, 12, 3]
        acc, _ = make_accelerator(dims, seed=2)
        trainer = InSituTrainer(acc, lr=0.3)
        digital = DigitalMLP(dims, activation="gst", seed=2)
        from repro.training.trainer import train_classifier

        class Wrap:
            def train_step(self, x, y):
                return digital.train_step(x, y, lr=0.3)

            def accuracy(self, x, y):
                return digital.accuracy(x, y)

        h_hw = train_classifier(trainer, train, test, epochs=5, batch_size=16)
        h_dig = train_classifier(Wrap(), train, test, epochs=5, batch_size=16)
        assert abs(h_hw.final_test_accuracy - h_dig.final_test_accuracy) < 0.1

    def test_training_with_noise_still_learns(self, blob_data):
        train, test = blob_data
        acc, _ = make_accelerator([8, 12, 3], seed=2, noise=NoiseModel.realistic(seed=6))
        trainer = InSituTrainer(acc, lr=0.3)
        from repro.training.trainer import train_classifier

        hist = train_classifier(trainer, train, test, epochs=6, batch_size=16)
        assert hist.final_test_accuracy > 0.8

    def test_weights_property_returns_copies(self):
        acc, _ = make_accelerator([8, 4])
        trainer = InSituTrainer(acc)
        ws = trainer.weights
        ws[0][:] = 99.0
        assert not np.allclose(trainer.weights[0], 99.0)


class TestBatchedMatchesStreaming:
    """The batched schedule must reproduce the per-sample reference exactly
    on noise-free hardware — same losses, same updated weights."""

    def test_identical_losses_and_weights(self, blob_data):
        train, _ = blob_data
        acc_b, _ = make_accelerator([8, 12, 3], seed=2)
        acc_s, _ = make_accelerator([8, 12, 3], seed=2)
        batched = InSituTrainer(acc_b, lr=0.3)
        streaming = InSituTrainer(acc_s, lr=0.3)
        for start in (0, 16, 32):
            xb = train.x[start : start + 16]
            yb = train.y[start : start + 16]
            loss_b = batched.train_step(xb, yb)
            loss_s = streaming.train_step_streaming(xb, yb)
            assert np.isclose(loss_b, loss_s, rtol=0, atol=1e-12)
        for w_b, w_s in zip(batched.weights, streaming.weights):
            np.testing.assert_allclose(w_b, w_s, rtol=0, atol=1e-12)

    def test_backward_batch_matches_accumulated_samples(self, blob_data):
        train, _ = blob_data
        B = 6
        acc, _ = make_accelerator([8, 12, 3], seed=2)
        trainer = InSituTrainer(acc, lr=0.3)
        xb, yb = train.x[:B], train.y[:B]

        logits = acc.forward_batch(xb, record=True)
        _, grad = cross_entropy_loss(logits, yb)
        grads_batch = trainer.backward_batch(grad * B)

        accum = [np.zeros((l.out_dim, l.in_dim)) for l in acc.layers]
        for x, label in zip(xb, yb):
            # The previous backward pass (batched or per-sample) left W^T in
            # the banks — restore forward weights before every sample.
            acc.set_weights([layer.weights for layer in acc.layers])
            lg = acc.forward(x, record=True)
            _, g = cross_entropy_loss(lg[None, :], np.array([label]))
            for a, gr in zip(accum, trainer.backward_sample(g[0])):
                a += gr
        for g_b, g_s in zip(grads_batch, accum):
            np.testing.assert_allclose(g_b, g_s, rtol=0, atol=1e-10)

    def test_dead_path_accounting_parity(self):
        """A sample whose hidden layer never fires dies after one
        gradient-vector hop.  The per-sample schedule skips its upstream
        outer product; the batched engine must compact the dead column
        out and charge exactly the same symbols — not stream a zero
        vector the control unit already knows is dead."""
        dims = [8, 12, 3]
        weights = [w.copy() for w in DigitalMLP(dims, activation="gst", seed=2).weights]
        # All-positive first layer + an all-negative sample => its hidden
        # pre-activations are all negative, so no GST cell fires and the
        # LDSU derivative bits are all zero for that sample.
        weights[0] = np.abs(weights[0])
        xb = np.vstack([np.full(8, 0.4), np.full(8, -0.4), np.full(8, 0.2)])
        yb = np.array([0, 1, 2])
        B = len(yb)

        def fresh():
            acc = TridentAccelerator()
            acc.map_mlp(dims)
            acc.set_weights([w.copy() for w in weights])
            return acc, InSituTrainer(acc, lr=0.1)

        acc_b, batched = fresh()
        logits = acc_b.forward_batch(xb, record=True)
        _, grad = cross_entropy_loss(logits, yb)
        before = acc_b.counters.symbols
        grads_batch = batched.backward_batch(grad * B)
        symbols_batch = acc_b.counters.symbols - before

        acc_s, streaming = fresh()
        symbols_sample = 0
        accum = [np.zeros((l.out_dim, l.in_dim)) for l in acc_s.layers]
        for x, g in zip(xb, grad * B):
            acc_s.set_weights([layer.weights for layer in acc_s.layers])
            acc_s.forward(x, record=True)
            before = acc_s.counters.symbols
            for a, gr in zip(accum, streaming.backward_sample(g)):
                a += gr
            symbols_sample += acc_s.counters.symbols - before

        assert symbols_batch == symbols_sample
        # The dead sample really was skipped: one layer-0 outer product
        # (12 symbols) short of the no-dead-path law B*(3 + 1 + 12).
        assert symbols_batch == B * (3 + 1 + 12) - 12
        for g_b, g_s in zip(grads_batch, accum):
            np.testing.assert_allclose(g_b, g_s, rtol=0, atol=1e-10)

    def test_backward_batch_requires_recorded_forward_batch(self):
        acc, _ = make_accelerator([8, 4])
        trainer = InSituTrainer(acc)
        acc.forward(np.zeros(8), record=True)  # per-sample record only
        with pytest.raises(MappingError):
            trainer.backward_batch(np.zeros((1, 4)))

    def test_backward_batch_shape_checked(self):
        acc, _ = make_accelerator([8, 4])
        trainer = InSituTrainer(acc)
        acc.forward_batch(np.zeros((3, 8)), record=True)
        with pytest.raises(ShapeError):
            trainer.backward_batch(np.zeros((3, 5)))


class TestWriteCostLaw:
    def test_streaming_bank_writes_follow_closed_form(self, blob_data):
        """The per-sample schedule's write count obeys the analytical law
        the latency model charges: per batch of B samples on an L-layer
        MLP, (B-1)*L weight restores + B*(L outer products + (L-1)
        gradient programs) + L update reprograms."""
        train, _ = blob_data
        for B in (1, 4, 9):
            acc, _ = make_accelerator([8, 12, 3], seed=2)
            trainer = InSituTrainer(acc, lr=0.1)
            L = len(acc.layers)
            base = acc.counters.bank_writes
            trainer.train_step_streaming(train.x[:B], train.y[:B])
            got = acc.counters.bank_writes - base
            predicted = (B - 1) * L + B * (L + (L - 1)) + L
            assert got == predicted, (B, got, predicted)

    def test_batched_bank_writes_follow_closed_form(self, blob_data):
        """Grouped reprogramming is *the* saving of the batched schedule:
        B*L per-sample outer-product programs survive, but the W^T
        programs collapse to one per hidden layer and the inter-sample
        restores disappear entirely."""
        train, _ = blob_data
        for B in (1, 4, 9):
            acc, _ = make_accelerator([8, 12, 3], seed=2)
            trainer = InSituTrainer(acc, lr=0.1)
            L = len(acc.layers)
            base = acc.counters.bank_writes
            trainer.train_step(train.x[:B], train.y[:B])
            got = acc.counters.bank_writes - base
            predicted = B * L + (L - 1) + L
            assert got == predicted, (B, got, predicted)

    def test_symbols_follow_closed_form(self, blob_data):
        """Symbols per batch: B forward symbols per layer + B gradient
        symbols per hidden layer + B outer-product streams (one symbol per
        delta element).  Batching saves writes, not symbols — both
        schedules stream exactly the same vectors through the banks."""
        train, _ = blob_data
        B = 5
        # forward: 2 layers -> 2B; gradient: 1 hidden -> B;
        # outer: layer1 streams len(delta1)=3, layer0 streams len(delta0)=12.
        predicted = 2 * B + B + B * (3 + 12)
        for step in ("train_step", "train_step_streaming"):
            acc, _ = make_accelerator([8, 12, 3], seed=2)
            trainer = InSituTrainer(acc, lr=0.1)
            base = acc.counters.symbols
            getattr(trainer, step)(train.x[:B], train.y[:B])
            got = acc.counters.symbols - base
            assert got == predicted, (step, got, predicted)
