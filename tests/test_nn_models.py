"""Tests for the CNN model zoo against published layer statistics."""

import pytest

from repro.errors import ShapeError
from repro.nn.layers import TensorShape
from repro.nn.models import (
    MODEL_BUILDERS,
    PAPER_MODELS,
    alexnet,
    build_model,
    googlenet,
    mobilenet_v2,
    resnet50,
    vgg16,
)


@pytest.fixture(scope="module")
def zoo():
    return {name: build_model(name) for name in MODEL_BUILDERS}


class TestRegistry:
    def test_five_models(self):
        assert set(MODEL_BUILDERS) == {
            "alexnet", "vgg16", "googlenet", "resnet50", "mobilenet_v2",
        }

    def test_paper_models_subset(self):
        assert set(PAPER_MODELS) == set(MODEL_BUILDERS)

    def test_unknown_model_rejected(self):
        with pytest.raises(ShapeError):
            build_model("lenet9000")

    def test_all_output_1000_classes(self, zoo):
        for net in zoo.values():
            assert net.output_shape == TensorShape(1, 1, 1000)

    def test_custom_class_count(self):
        assert alexnet(n_classes=10).output_shape.channels == 10


class TestAlexNet:
    def test_param_count(self, zoo):
        # Classic (ungrouped) AlexNet: ~62 M parameters.
        assert zoo["alexnet"].stats().total_params == pytest.approx(62.4e6, rel=0.01)

    def test_mac_count(self, zoo):
        assert zoo["alexnet"].stats().total_macs == pytest.approx(1.14e9, rel=0.02)

    def test_conv_tower_shapes(self, zoo):
        net = zoo["alexnet"]
        assert net.shape_of("conv1") == TensorShape(55, 55, 96)
        assert net.shape_of("pool1") == TensorShape(27, 27, 96)
        assert net.shape_of("conv5") == TensorShape(13, 13, 256)
        assert net.shape_of("pool3") == TensorShape(6, 6, 256)

    def test_fc6_input_is_9216(self, zoo):
        g = [s for s in zoo["alexnet"].stats().layers if s.name == "fc6"][0].gemm
        assert g.k == 9216
        assert g.m == 4096

    def test_eight_weight_layers(self, zoo):
        assert zoo["alexnet"].stats().n_weight_layers == 8


class TestVGG16:
    def test_param_count(self, zoo):
        assert zoo["vgg16"].stats().total_params == pytest.approx(138.4e6, rel=0.005)

    def test_mac_count(self, zoo):
        assert zoo["vgg16"].stats().total_macs == pytest.approx(15.47e9, rel=0.005)

    def test_sixteen_weight_layers(self, zoo):
        assert zoo["vgg16"].stats().n_weight_layers == 16

    def test_final_conv_shape(self, zoo):
        assert zoo["vgg16"].shape_of("conv5_3") == TensorShape(14, 14, 512)
        assert zoo["vgg16"].shape_of("pool5") == TensorShape(7, 7, 512)


class TestGoogleNet:
    def test_param_count(self, zoo):
        # Inception v1 without aux heads: ~7 M parameters.
        assert zoo["googlenet"].stats().total_params == pytest.approx(7.0e6, rel=0.05)

    def test_mac_count(self, zoo):
        assert zoo["googlenet"].stats().total_macs == pytest.approx(1.58e9, rel=0.05)

    def test_inception_3a_concat_channels(self, zoo):
        # 64 + 128 + 32 + 32 = 256.
        assert zoo["googlenet"].shape_of("inception3a_concat").channels == 256

    def test_inception_5b_concat_channels(self, zoo):
        assert zoo["googlenet"].shape_of("inception5b_concat").channels == 1024

    def test_many_small_layers(self, zoo):
        # The property behind Table V's sign flip: 58 weight layers.
        assert zoo["googlenet"].stats().n_weight_layers == 58


class TestResNet50:
    def test_param_count(self, zoo):
        assert zoo["resnet50"].stats().total_params == pytest.approx(25.5e6, rel=0.02)

    def test_mac_count(self, zoo):
        assert zoo["resnet50"].stats().total_macs == pytest.approx(4.1e9, rel=0.02)

    def test_stage_output_shapes(self, zoo):
        net = zoo["resnet50"]
        assert net.shape_of("res2_2_add") == TensorShape(56, 56, 256)
        assert net.shape_of("res3_3_add") == TensorShape(28, 28, 512)
        assert net.shape_of("res4_5_add") == TensorShape(14, 14, 1024)
        assert net.shape_of("res5_2_add") == TensorShape(7, 7, 2048)

    def test_53_convs_plus_fc(self, zoo):
        assert zoo["resnet50"].stats().n_weight_layers == 54


class TestMobileNetV2:
    def test_param_count(self, zoo):
        assert zoo["mobilenet_v2"].stats().total_params == pytest.approx(3.5e6, rel=0.02)

    def test_mac_count(self, zoo):
        assert zoo["mobilenet_v2"].stats().total_macs == pytest.approx(0.3e9, rel=0.05)

    def test_head_shape(self, zoo):
        assert zoo["mobilenet_v2"].shape_of("conv_head") == TensorShape(7, 7, 1280)

    def test_first_block_no_expand(self, zoo):
        net = zoo["mobilenet_v2"]
        assert "block0_expand" not in net
        assert "block1_expand" in net

    def test_residual_adds_present_where_shapes_match(self, zoo):
        net = zoo["mobilenet_v2"]
        # Stage with repeats>1, stride 1 within stage: block2 adds to block1.
        assert "block2_add" in net

    def test_stem_downsamples(self, zoo):
        assert zoo["mobilenet_v2"].shape_of("conv_stem") == TensorShape(112, 112, 32)


class TestRelativeOrdering:
    def test_mac_ordering_matches_literature(self, zoo):
        macs = {name: net.stats().total_macs for name, net in zoo.items()}
        assert macs["mobilenet_v2"] < macs["alexnet"] < macs["googlenet"]
        assert macs["googlenet"] < macs["resnet50"] < macs["vgg16"]

    def test_param_ordering(self, zoo):
        params = {name: net.stats().total_params for name, net in zoo.items()}
        assert params["mobilenet_v2"] < params["googlenet"] < params["resnet50"]
        assert params["resnet50"] < params["alexnet"] < params["vgg16"]


class TestInputFlexibility:
    """The builders are parametric, not hard-coded to 224x224."""

    @pytest.mark.parametrize("size", [96, 160, 320])
    def test_resnet50_resolves_other_resolutions(self, size):
        net = resnet50(input_shape=TensorShape(size, size, 3))
        assert net.output_shape.channels == 1000
        assert net.stats().total_macs > 0

    @pytest.mark.parametrize("size", [128, 192])
    def test_mobilenet_resolves_other_resolutions(self, size):
        net = mobilenet_v2(input_shape=TensorShape(size, size, 3))
        assert net.output_shape.channels == 1000

    def test_macs_scale_roughly_quadratically_with_resolution(self):
        small = vgg16(input_shape=TensorShape(112, 112, 3)).stats()
        large = vgg16(input_shape=TensorShape(224, 224, 3)).stats()
        # Conv MACs scale 4x; the fixed fc head dilutes slightly.
        ratio = large.total_macs / small.total_macs
        assert 3.0 < ratio < 4.2

    def test_grayscale_input(self):
        net = alexnet(input_shape=TensorShape(224, 224, 1))
        assert net.stats().total_params < alexnet().stats().total_params

    def test_googlenet_small_input(self):
        net = googlenet(input_shape=TensorShape(64, 64, 3))
        assert net.output_shape.channels == 1000
