"""Tests for the vectorized weight bank."""

import numpy as np
import pytest

from repro.arch.weight_bank import BankStats, WeightBank
from repro.devices.noise import NoiseModel
from repro.devices.pcm_mrr import PCMMRRWeight
from repro.devices.tuning import ThermalTuning
from repro.errors import ProgrammingError, ShapeError


@pytest.fixture
def bank():
    return WeightBank(rows=16, cols=16)


class TestProgramming:
    def test_full_bank_program(self, bank, rng):
        w = rng.uniform(-1, 1, (16, 16))
        realized = bank.program(w)
        assert realized.shape == (16, 16)
        assert np.max(np.abs(realized - w)) <= bank.weight_step / 2 + 1e-12

    def test_partial_block(self, bank, rng):
        w = rng.uniform(-1, 1, (5, 7))
        bank.program(w)
        assert bank.occupancy == (5, 7)

    def test_reprogram_clears_previous(self, bank, rng):
        bank.program(rng.uniform(-1, 1, (16, 16)))
        bank.program(rng.uniform(-1, 1, (3, 3)))
        assert bank.occupancy == (3, 3)
        # Cells outside the new block are parked at zero.
        assert np.all(bank.realized_weights[3:, :] == 0)

    def test_rejects_oversized_block(self, bank):
        with pytest.raises(ShapeError):
            bank.program(np.zeros((17, 16)))

    def test_rejects_overrange_weights(self, bank):
        with pytest.raises(ProgrammingError):
            bank.program(np.full((2, 2), 1.5))

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ShapeError):
            WeightBank(rows=0, cols=16)

    def test_write_stats_accumulate(self, bank, rng):
        bank.program(rng.uniform(-1, 1, (16, 16)))
        bank.program(rng.uniform(-1, 1, (4, 4)))
        assert bank.stats.write_events == 2
        assert bank.stats.cells_written == 256 + 16
        assert bank.stats.write_energy_j == pytest.approx((256 + 16) * 660e-12)
        assert bank.stats.write_time_s == pytest.approx(2 * 300e-9)

    def test_quantization_levels_default_8bit(self, bank):
        assert bank.levels == 255
        assert bank.weight_step == pytest.approx(2 / 254)

    def test_thermal_bank_is_6bit(self):
        bank = WeightBank(tuning=ThermalTuning())
        assert bank.levels == 63
        assert bank.weight_step > WeightBank().weight_step

    def test_programming_noise_perturbs_levels(self, rng):
        noisy = WeightBank(
            noise=NoiseModel.realistic(seed=1), programming_noise_levels=1.0
        )
        clean = WeightBank()
        w = rng.uniform(-1, 1, (16, 16))
        r_noisy = noisy.program(w)
        r_clean = clean.program(w)
        assert not np.array_equal(r_noisy, r_clean)
        # Perturbation is level-scale, so still close.
        assert np.max(np.abs(r_noisy - r_clean)) < 10 * clean.weight_step


class TestMatvec:
    def test_matches_realized_weights(self, bank, rng):
        w = rng.uniform(-1, 1, (16, 16))
        realized = bank.program(w)
        x = rng.uniform(-1, 1, 16)
        assert np.allclose(bank.matvec(x), realized @ x)

    def test_quantized_accuracy(self, bank, rng):
        w = rng.uniform(-1, 1, (16, 16))
        bank.program(w)
        x = rng.uniform(-1, 1, 16)
        # Error bounded by accumulated quantization: N * step/2.
        assert np.max(np.abs(bank.matvec(x) - w @ x)) <= 16 * bank.weight_step / 2

    def test_partial_block_matvec(self, bank, rng):
        w = rng.uniform(-1, 1, (4, 6))
        realized = bank.program(w)
        x = rng.uniform(-1, 1, 6)
        out = bank.matvec(x)
        assert out.shape == (4,)
        assert np.allclose(out, realized @ x)

    def test_rejects_wrong_length(self, bank, rng):
        bank.program(rng.uniform(-1, 1, (4, 6)))
        with pytest.raises(ShapeError):
            bank.matvec(np.zeros(5))

    def test_rejects_overrange_input(self, bank, rng):
        bank.program(rng.uniform(-1, 1, (4, 4)))
        with pytest.raises(ProgrammingError):
            bank.matvec(np.array([2.0, 0, 0, 0]))

    def test_rejects_matrix_input(self, bank, rng):
        bank.program(rng.uniform(-1, 1, (4, 4)))
        with pytest.raises(ShapeError):
            bank.matvec(np.zeros((4, 4)))

    def test_symbols_counted(self, bank, rng):
        bank.program(rng.uniform(-1, 1, (4, 4)))
        for _ in range(3):
            bank.matvec(np.zeros(4))
        assert bank.stats.symbols == 3


class TestMatmat:
    def test_matches_matvec_columns(self, bank, rng):
        bank.program(rng.uniform(-1, 1, (8, 8)))
        x = rng.uniform(-1, 1, (8, 5))
        batched = bank.matmat(x)
        for j in range(5):
            assert np.allclose(batched[:, j], bank.matvec(x[:, j]))

    def test_counts_one_symbol_per_column(self, bank, rng):
        bank.program(rng.uniform(-1, 1, (8, 8)))
        bank.matmat(rng.uniform(-1, 1, (8, 7)))
        assert bank.stats.symbols == 7

    def test_rejects_vector(self, bank, rng):
        bank.program(rng.uniform(-1, 1, (4, 4)))
        with pytest.raises(ShapeError):
            bank.matmat(np.zeros(4))

    def test_remapped_rows_match_matvec(self, rng):
        # Remapping flips matmat off its identity-view fast path onto
        # the row-map gather; both must agree with matvec exactly.
        bank = WeightBank(rows=4, cols=4, spare_rows=2)
        w = rng.uniform(-1, 1, (4, 4))
        bank.program(w)
        bank.remap_row(1)
        bank.program(w)
        x = rng.uniform(-1, 1, (4, 5))
        batched = bank.matmat(x)
        for j in range(5):
            assert np.allclose(
                batched[:, j], bank.matvec(x[:, j]), atol=1e-12
            )

    def test_crosstalk_partial_block_matches_matvec(self, rng):
        # With channel mixing the padded slab path runs; a partial block
        # must still match the per-column matvec bit for bit.
        mix = np.eye(8) + 0.01 * rng.uniform(-1, 1, (8, 8))
        bank = WeightBank(rows=8, cols=8, crosstalk=mix)
        bank.program(rng.uniform(-1, 1, (5, 6)))
        x = rng.uniform(-1, 1, (6, 3))
        batched = bank.matmat(x)
        for j in range(3):
            assert np.allclose(batched[:, j], bank.matvec(x[:, j]))


class TestCrosstalk:
    def test_identity_crosstalk_is_noop(self, rng):
        clean = WeightBank()
        xtalk = WeightBank(crosstalk=np.eye(16))
        w = rng.uniform(-1, 1, (16, 16))
        clean.program(w)
        xtalk.program(w)
        x = rng.uniform(-1, 1, 16)
        assert np.allclose(clean.matvec(x), xtalk.matvec(x))

    def test_leakage_perturbs_output(self, rng):
        leak = np.eye(16) + 0.01 * (np.ones((16, 16)) - np.eye(16))
        bank = WeightBank(crosstalk=leak)
        clean = WeightBank()
        w = rng.uniform(-1, 1, (16, 16))
        bank.program(w)
        clean.program(w)
        x = rng.uniform(-1, 1, 16)
        assert not np.allclose(bank.matvec(x), clean.matvec(x))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ShapeError):
            WeightBank(cols=16, crosstalk=np.eye(8))


class TestHoldEnergy:
    def test_gst_bank_holds_for_free(self, bank, rng):
        bank.program(rng.uniform(-1, 1, (16, 16)))
        assert bank.hold_energy(1.0) == 0.0

    def test_thermal_bank_pays_hold(self, rng):
        bank = WeightBank(tuning=ThermalTuning())
        bank.program(rng.uniform(-1, 1, (16, 16)))
        assert bank.hold_energy(1e-3) == pytest.approx(256 * 1.7e-3 * 1e-3)


class TestBankStats:
    def test_merge(self):
        a = BankStats(write_events=1, cells_written=10, write_energy_j=1.0,
                      write_time_s=0.1, symbols=5)
        b = BankStats(write_events=2, cells_written=20, write_energy_j=2.0,
                      write_time_s=0.2, symbols=7)
        m = a.merge(b)
        assert m.write_events == 3
        assert m.cells_written == 30
        assert m.symbols == 12


class TestAgainstScalarDevice:
    def test_bank_quantization_matches_scalar_device(self, rng):
        """The array fast path and the per-device physics must agree."""
        bank = WeightBank()
        targets = rng.uniform(-1, 1, 8)
        realized = bank.program(targets[None, :])
        for target, got in zip(targets, realized[0]):
            device = PCMMRRWeight()
            device.program(float(target))
            assert got == pytest.approx(device.weight, abs=1e-9)
