"""Tests for photodetector and balanced-pair models."""

import numpy as np
import pytest

from repro.devices.noise import NoiseModel
from repro.devices.photodetector import BalancedPhotodetector, Photodetector
from repro.errors import ConfigError, DeviceError


class TestPhotodetector:
    def test_photocurrent_linear_in_power(self):
        pd = Photodetector(dark_current_a=0.0)
        assert float(pd.photocurrent(2e-3)) == pytest.approx(2 * float(pd.photocurrent(1e-3)))

    def test_dark_current_added(self):
        pd = Photodetector(dark_current_a=5e-9)
        assert float(pd.photocurrent(0.0)) == pytest.approx(5e-9)

    def test_rejects_negative_power(self):
        with pytest.raises(DeviceError):
            Photodetector().photocurrent(-1e-3)

    def test_shot_noise_grows_with_sqrt_power(self):
        pd = Photodetector(dark_current_a=0.0)
        ratio = float(pd.shot_noise_std(4e-3)) / float(pd.shot_noise_std(1e-3))
        assert ratio == pytest.approx(2.0, rel=1e-6)

    def test_thermal_noise_independent_of_power(self):
        pd = Photodetector()
        assert pd.thermal_noise_std() > 0

    def test_snr_improves_with_power(self):
        pd = Photodetector()
        assert pd.snr_db(1e-3) > pd.snr_db(1e-6)

    def test_snr_rejects_nonpositive_power(self):
        with pytest.raises(DeviceError):
            Photodetector().snr_db(0.0)

    def test_snr_is_tens_of_db_at_milliwatt(self):
        assert 20 < Photodetector().snr_db(1e-3) < 120

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            Photodetector(responsivity_a_per_w=0.0)
        with pytest.raises(ConfigError):
            Photodetector(dark_current_a=-1e-9)
        with pytest.raises(ConfigError):
            Photodetector(bandwidth_hz=0.0)


class TestBalancedPhotodetector:
    def test_differential_subtracts(self):
        bpd = BalancedPhotodetector()
        r = bpd.detector.responsivity_a_per_w
        out = bpd.detect(2e-3, 0.5e-3)
        assert float(out) == pytest.approx(r * 1.5e-3)

    def test_dark_current_cancels(self):
        bpd = BalancedPhotodetector(detector=Photodetector(dark_current_a=1e-6))
        assert float(bpd.detect(1e-3, 1e-3)) == pytest.approx(0.0)

    def test_rejects_shape_mismatch(self):
        bpd = BalancedPhotodetector()
        with pytest.raises(DeviceError):
            bpd.detect(np.ones(3), np.ones(4))

    def test_rejects_negative_power(self):
        bpd = BalancedPhotodetector()
        with pytest.raises(DeviceError):
            bpd.detect(np.array([-1e-3]), np.array([0.0]))

    def test_detect_normalized_identity_when_ideal(self):
        bpd = BalancedPhotodetector()
        sig = np.array([1.0, -2.0, 0.25, 0.0])
        assert np.allclose(bpd.detect_normalized(sig), sig)

    def test_detect_normalized_noisy_is_unbiased(self):
        bpd = BalancedPhotodetector(noise=NoiseModel.realistic(seed=3))
        sig = np.full(20000, 0.5)
        out = bpd.detect_normalized(sig)
        assert np.mean(out) == pytest.approx(0.5, abs=1e-3)
        assert np.std(out) > 0

    def test_noise_repeatable_from_seed(self):
        sig = np.linspace(-1, 1, 64)
        a = BalancedPhotodetector(noise=NoiseModel.realistic(seed=9)).detect_normalized(sig)
        b = BalancedPhotodetector(noise=NoiseModel.realistic(seed=9)).detect_normalized(sig)
        assert np.array_equal(a, b)
