"""Tests for the experiment harness (tables, figures, formatting)."""

import pytest

from repro.errors import ConfigError
from repro.eval.experiments import PAPER, compare
from repro.eval.figures import (
    fig3_activation_transfer,
    fig4_photonic_energy,
    fig5_area_breakdown,
    fig6_inferences_per_second,
)
from repro.eval.formatting import format_table
from repro.eval.tables import (
    table1_tuning,
    table2_mapping_check,
    table3_power,
    table4_tops,
    table5_training,
)


class TestFormatting:
    def test_basic_table(self):
        text = format_table(["a", "b"], [["x", 1.0], ["y", 2.5]])
        assert "a" in text and "x" in text and "2.5" in text

    def test_title(self):
        text = format_table(["a"], [["v"]], title="My Table")
        assert text.startswith("My Table")

    def test_arity_checked(self):
        with pytest.raises(ConfigError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigError):
            format_table([], [])

    def test_bool_rendering(self):
        text = format_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_scientific_for_extremes(self):
        text = format_table(["v"], [[1.23e-9]])
        assert "e-09" in text


class TestExperimentRecords:
    def test_relative_error(self):
        r = compare("t", "m", 100.0, 110.0)
        assert r.relative_error == pytest.approx(0.1)
        assert r.within == pytest.approx(0.1)

    def test_negative_error(self):
        r = compare("t", "m", 100.0, 90.0)
        assert r.relative_error == pytest.approx(-0.1)

    def test_zero_paper_value_rejected(self):
        with pytest.raises(ConfigError):
            compare("t", "m", 0.0, 1.0).relative_error

    def test_row_shape(self):
        row = compare("t", "m", 1.0, 2.0, "W").row()
        assert len(row) == 6

    def test_paper_targets_training_table(self):
        table = PAPER.training_table()
        assert table["vgg16"] == (1293.8, 796.1)
        assert set(table) == {"mobilenet_v2", "googlenet", "resnet50", "vgg16"}


class TestTables:
    def test_table1_exact(self):
        report = table1_tuning()
        assert report.max_relative_error() < 1e-9
        assert len(report.rows) == 3
        assert "Table I" in report.text

    def test_table2_verifies_all_modes(self):
        report = table2_mapping_check()
        assert len(report.rows) == 3
        # Max error column is quantization-scale, not garbage.
        for row in report.rows:
            assert row[-1] < 0.05

    def test_table3_within_tolerance(self):
        report = table3_power()
        # Paper rounds 0.676 -> 0.67 and 0.113 -> 0.11: allow 3 %.
        assert report.max_relative_error() < 0.03

    def test_table3_has_all_components_plus_total(self):
        report = table3_power()
        assert len(report.rows) == 8
        assert report.rows[-1][0] == "Total"

    def test_table4_specs_exact(self):
        report = table4_tops()
        by_metric = {c.metric: c for c in report.comparisons}
        assert by_metric["xavier TOPS"].within < 1e-9
        assert by_metric["trident TOPS"].within < 0.01

    def test_table5_xavier_column_calibrated(self):
        report = table5_training()
        for c in report.comparisons:
            if "xavier" in c.metric:
                assert c.within < 0.01, c

    def test_table5_trident_googlenet_within_25pct(self):
        report = table5_training()
        by_metric = {c.metric: c for c in report.comparisons}
        assert by_metric["googlenet trident time"].within < 0.25
        assert by_metric["vgg16 trident time"].within < 0.25


class TestFigures:
    def test_fig3_threshold_and_slope_exact(self):
        report = fig3_activation_transfer()
        assert report.max_relative_error() < 0.01
        assert len(report.series["input_energy_pj"]) == 201

    def test_fig4_average_improvements(self):
        report = fig4_photonic_energy()
        assert report.max_relative_error() < 0.02
        assert set(report.series) == {"trident", "deap-cnn", "crosslight", "pixel"}

    def test_fig4_five_models_per_series(self):
        report = fig4_photonic_energy()
        for series in report.series.values():
            assert len(series) == 5

    def test_fig5_chip_area(self):
        report = fig5_area_breakdown()
        assert report.max_relative_error() < 0.005
        assert report.series["percentage"]["Total"] == pytest.approx(100.0)

    def test_fig6_all_seven_accelerators(self):
        report = fig6_inferences_per_second()
        assert set(report.series) == {
            "trident", "deap-cnn", "crosslight", "pixel",
            "agx-xavier", "tb96-ai", "google-coral",
        }

    def test_fig6_average_improvements_within_3pct(self):
        report = fig6_inferences_per_second()
        for c in report.comparisons:
            assert c.within < 0.03, c.metric

    def test_fig6_trident_fastest_photonic_on_every_model(self):
        report = fig6_inferences_per_second()
        trident = report.series["trident"]
        for name in ("deap-cnn", "crosslight", "pixel"):
            for model, ips in report.series[name].items():
                assert trident[model] > ips, (name, model)

    def test_fig6_trident_beats_electronic_except_depthwise_exception(self):
        """Trident out-infers every electronic device on the dense CNNs;
        MobileNetV2 vs Xavier is the documented deviation (depthwise
        layers occupy 9/256 of a photonic bank — see EXPERIMENTS.md)."""
        report = fig6_inferences_per_second()
        trident = report.series["trident"]
        for name in ("agx-xavier", "tb96-ai", "google-coral"):
            for model, ips in report.series[name].items():
                if name == "agx-xavier" and model == "mobilenet_v2":
                    continue
                assert trident[model] > ips, (name, model)


class TestLayerReport:
    def test_layer_table_renders(self):
        from repro.eval.layer_report import layer_cost_table

        cost, text = layer_cost_table("alexnet", top=5)
        assert "alexnet on trident" in text
        assert "TOTAL" in text
        assert cost.model == "alexnet"

    def test_top_filters_layers(self):
        from repro.eval.layer_report import layer_cost_table

        _, text = layer_cost_table("vgg16", top=3)
        # 3 layers + header rows + total.
        assert text.count("conv") <= 3

    def test_baseline_arch_selectable(self):
        from repro.eval.layer_report import layer_cost_table

        cost, _ = layer_cost_table("alexnet", arch_name="pixel", top=3)
        assert cost.accelerator == "pixel"

    def test_unknown_arch_rejected(self):
        from repro.errors import ConfigError
        from repro.eval.layer_report import layer_cost_table

        with pytest.raises(ConfigError):
            layer_cost_table("alexnet", arch_name="flux")

    def test_bad_top_rejected(self):
        from repro.errors import ConfigError
        from repro.eval.layer_report import layer_cost_table

        with pytest.raises(ConfigError):
            layer_cost_table("alexnet", top=0)
