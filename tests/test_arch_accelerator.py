"""Tests for the functional Trident accelerator."""

import numpy as np
import pytest

from repro.arch.accelerator import TridentAccelerator
from repro.arch.config import TridentConfig
from repro.devices.noise import NoiseModel
from repro.errors import MappingError, ShapeError


def digital_gst_forward(weights, x):
    a = x
    for k, w in enumerate(weights):
        h = w @ a
        a = 0.34 * np.maximum(h, 0) if k < len(weights) - 1 else h
    return a


class TestMapping:
    def test_single_tile_per_small_layer(self):
        acc = TridentAccelerator()
        acc.map_mlp([16, 16, 8])
        assert len(acc.layers) == 2
        assert all(len(layer.tiles) == 1 for layer in acc.layers)
        assert len(acc.pes) == 2

    def test_tiled_large_layer(self):
        acc = TridentAccelerator()
        acc.map_mlp([40, 24, 4])
        # Layer 0: ceil(24/16) * ceil(40/16) = 2 * 3 = 6 tiles.
        assert len(acc.layers[0].tiles) == 6
        assert len(acc.layers[1].tiles) == 2

    def test_pe_budget_enforced(self):
        acc = TridentAccelerator(config=TridentConfig(n_pes=2))
        with pytest.raises(MappingError):
            acc.map_mlp([64, 64, 64])

    def test_rejects_degenerate_dims(self):
        acc = TridentAccelerator()
        with pytest.raises(MappingError):
            acc.map_mlp([8])
        with pytest.raises(MappingError):
            acc.map_mlp([8, 0, 4])

    def test_remap_resets_state(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([8, 8])
        acc.set_weights([rng.uniform(-1, 1, (8, 8))])
        acc.forward(rng.uniform(-1, 1, 8))
        acc.map_mlp([4, 4])
        assert acc.counters.symbols == 0
        assert len(acc.pes) == 1


class TestWeights:
    def test_set_weights_shape_checked(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([8, 4])
        with pytest.raises(ShapeError):
            acc.set_weights([rng.uniform(-1, 1, (4, 9))])

    def test_wrong_count_rejected(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([8, 4])
        with pytest.raises(MappingError):
            acc.set_weights([rng.uniform(-1, 1, (4, 8))] * 2)

    def test_weight_scale_recorded_for_overrange(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([8, 4])
        acc.set_weights([rng.uniform(-3, 3, (4, 8))])
        assert acc.layers[0].weight_scale > 1.0

    def test_writes_counted_per_tile(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([40, 24, 4])
        acc.set_weights([rng.uniform(-1, 1, (24, 40)), rng.uniform(-1, 1, (4, 24))])
        assert acc.counters.bank_writes == 8  # 6 + 2 tiles
        assert acc.counters.cells_written == 24 * 40 + 4 * 24


class TestForward:
    def test_matches_digital_reference(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([16, 16, 8])
        ws = [rng.uniform(-1, 1, (16, 16)), rng.uniform(-1, 1, (8, 16))]
        acc.set_weights(ws)
        x = rng.uniform(-1, 1, 16)
        got = acc.forward(x)
        expected = digital_gst_forward(ws, x)
        assert np.max(np.abs(got - expected)) < 0.05

    def test_tiled_forward_matches(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([40, 24, 4])
        ws = [rng.uniform(-2, 2, (24, 40)), rng.uniform(-1, 1, (4, 24))]
        acc.set_weights(ws)
        x = rng.uniform(-3, 3, 40)
        got = acc.forward(x)
        expected = digital_gst_forward(ws, x)
        assert np.max(np.abs(got - expected)) / np.max(np.abs(expected)) < 0.02

    def test_forward_without_weights_rejected(self):
        acc = TridentAccelerator()
        acc.map_mlp([8, 4])
        with pytest.raises(MappingError):
            acc.forward(np.zeros(8))

    def test_forward_before_mapping_rejected(self):
        with pytest.raises(MappingError):
            TridentAccelerator().forward(np.zeros(4))

    def test_wrong_input_shape_rejected(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([8, 4])
        acc.set_weights([rng.uniform(-1, 1, (4, 8))])
        with pytest.raises(ShapeError):
            acc.forward(np.zeros(9))

    def test_record_keeps_intermediates(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([8, 6, 4])
        acc.set_weights([rng.uniform(-1, 1, (6, 8)), rng.uniform(-1, 1, (4, 6))])
        x = rng.uniform(-1, 1, 8)
        acc.forward(x, record=True)
        assert np.array_equal(acc.layers[0].last_input, x)
        assert acc.layers[0].last_logits is not None
        assert acc.layers[1].last_input is not None

    def test_forward_batch(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([8, 4])
        acc.set_weights([rng.uniform(-1, 1, (4, 8))])
        xs = rng.uniform(-1, 1, (5, 8))
        out = acc.forward_batch(xs)
        assert out.shape == (5, 4)

    def test_forward_batch_rejects_vector(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([8, 4])
        acc.set_weights([rng.uniform(-1, 1, (4, 8))])
        with pytest.raises(ShapeError):
            acc.forward_batch(np.zeros(8))

    def test_noisy_forward_still_close(self, rng):
        acc = TridentAccelerator(noise=NoiseModel.realistic(seed=4))
        acc.map_mlp([16, 8])
        w = rng.uniform(-1, 1, (8, 16))
        acc.set_weights([w])
        x = rng.uniform(-1, 1, 16)
        got = acc.forward(x)
        # Logits (no activation on the single layer) stay close to W x
        # despite detection noise.
        assert np.max(np.abs(got - w @ x)) < 0.2


class TestAccounting:
    def test_energy_positive_after_run(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([16, 8])
        acc.set_weights([rng.uniform(-1, 1, (8, 16))])
        acc.forward(rng.uniform(-1, 1, 16))
        assert acc.energy_estimate_j() > 0
        assert acc.time_estimate_s() > 0

    def test_energy_components(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([16, 8])
        acc.set_weights([rng.uniform(-1, 1, (8, 16))])
        # One bank write: 128 cells * 660 pJ.
        assert acc.energy_estimate_j() == pytest.approx(128 * 660e-12)
        acc.forward(np.zeros(16))
        per_symbol = acc.config.pe_streaming_power_w / acc.config.symbol_rate_hz
        assert acc.energy_estimate_j() == pytest.approx(128 * 660e-12 + per_symbol)

    def test_time_components(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([16, 8])
        acc.set_weights([rng.uniform(-1, 1, (8, 16))])
        acc.forward(np.zeros(16))
        expected = 300e-9 + 1 / acc.config.symbol_rate_hz
        assert acc.time_estimate_s() == pytest.approx(expected)

    def test_bank_stats_merged_across_pes(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([16, 16, 8])
        acc.set_weights([rng.uniform(-1, 1, (16, 16)), rng.uniform(-1, 1, (8, 16))])
        assert acc.bank_stats().write_events == 2

    def test_time_estimate_uses_recorded_write_time(self, rng):
        """Program-and-verify extra rounds must count: the estimate reads
        the banks' recorded write_time_s, not write_events x write_time."""
        from repro.arch.weight_bank import program_with_verify
        from repro.devices.program_verify import (
            ProgramVerifyConfig,
            ProgramVerifyWriter,
        )

        acc = TridentAccelerator()
        acc.map_mlp([16, 8])
        acc.set_weights([rng.uniform(-1, 1, (8, 16))])
        base = acc.time_estimate_s()
        cfg = ProgramVerifyConfig(
            write_std_levels=50.0, tolerance_levels=0.1, max_iterations=4
        )
        bank = acc.pes[0].bank
        _, result = program_with_verify(
            bank, rng.uniform(-1, 1, (8, 16)), ProgramVerifyWriter(cfg, seed=0)
        )
        rounds = int(result.pulses.max())
        assert rounds > 1
        assert acc.time_estimate_s() == pytest.approx(
            base + rounds * bank.tuning.write_time()
        )


class TestForwardBatchFast:
    def test_fast_path_matches_per_sample(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([10, 14, 3])
        acc.set_weights([rng.uniform(-1, 1, (14, 10)), rng.uniform(-1, 1, (3, 14))])
        xs = rng.uniform(-1, 1, (16, 10))
        fast = acc.forward_batch(xs)
        slow = np.stack([acc.forward(row) for row in xs])
        assert np.allclose(fast, slow, atol=1e-12)

    def test_tiled_network_streams_blocked(self, rng):
        """A tiled network streams as blocked matmats, matching the
        per-sample path output *and* counters exactly (the tentpole
        parity guarantee — no per-sample fallback)."""
        acc = TridentAccelerator()
        acc.map_mlp([40, 24, 4])
        assert any(len(layer.tiles) > 1 for layer in acc.layers)
        acc.set_weights([rng.uniform(-1, 1, (24, 40)), rng.uniform(-1, 1, (4, 24))])
        xs = rng.uniform(-1, 1, (4, 40))
        base = acc.counters.snapshot()
        fast = acc.forward_batch(xs)
        delta_batch = acc.counters.diff(base)
        base = acc.counters.snapshot()
        slow = np.stack([acc.forward(row) for row in xs])
        delta_sample = acc.counters.diff(base)
        assert np.allclose(fast, slow, atol=1e-12)
        assert delta_batch.as_dict() == delta_sample.as_dict()

    def test_counters_match_bank_stats(self, rng):
        """One symbol rule: the accelerator's symbol counter must equal
        the banks' own streamed-vector totals in both paths."""
        acc = TridentAccelerator()
        acc.map_mlp([40, 24, 4])
        acc.set_weights([rng.uniform(-1, 1, (24, 40)), rng.uniform(-1, 1, (4, 24))])
        acc.forward_batch(rng.uniform(-1, 1, (6, 40)))
        acc.forward(rng.uniform(-1, 1, 40))
        assert acc.counters.symbols == acc.bank_stats().symbols
        assert acc.counters.bank_writes == acc.bank_stats().write_events
        assert acc.counters.cells_written == acc.bank_stats().cells_written

    def test_symbols_counted_per_sample_per_layer(self, rng):
        acc = TridentAccelerator()
        acc.map_mlp([10, 14, 3])
        acc.set_weights([rng.uniform(-1, 1, (14, 10)), rng.uniform(-1, 1, (3, 14))])
        before = acc.counters.symbols
        acc.forward_batch(rng.uniform(-1, 1, (8, 10)))
        assert acc.counters.symbols - before == 8 * 2

    def test_symbols_counted_per_bank_when_tiled(self, rng):
        """Tiled layers stream one symbol per bank a vector enters; the
        batched and per-sample paths must agree on the total."""
        acc = TridentAccelerator()
        acc.map_mlp([40, 24, 4])  # layer0: 2x3 tiles, layer1: 1x2 tiles
        acc.set_weights([rng.uniform(-1, 1, (24, 40)), rng.uniform(-1, 1, (4, 24))])
        n_tiles = sum(len(layer.tiles) for layer in acc.layers)
        before = acc.counters.symbols
        acc.forward_batch(rng.uniform(-1, 1, (8, 40)))
        assert acc.counters.symbols - before == 8 * n_tiles
        before = acc.counters.symbols
        acc.forward(rng.uniform(-1, 1, 40))
        assert acc.counters.symbols - before == n_tiles

    def test_per_sample_normalization_independent(self, rng):
        """A huge sample must not squash its batch-mates' precision."""
        acc = TridentAccelerator()
        acc.map_mlp([4, 3])
        w = rng.uniform(-1, 1, (3, 4))
        acc.set_weights([w])
        small = rng.uniform(-0.1, 0.1, 4)
        xs = np.stack([small, small * 0 + 1.0])
        out = acc.forward_batch(xs)
        assert np.max(np.abs(out[0] - w @ small)) < 0.01
