"""Tests for the cache model and the control unit."""

import numpy as np
import pytest

from repro.arch.cache import CacheConfig, CacheModel
from repro.arch.control import (
    ControlUnit,
    OperatingMode,
    RangeNormalizer,
    table2_mapping,
)
from repro.errors import ConfigError, DeviceError


class TestCacheModel:
    def test_level_selection(self):
        cm = CacheModel()
        assert cm.level_for(1024) == "l1"
        assert cm.level_for(1024 * 1024) == "l2"
        assert cm.level_for(64 * 1024 * 1024) == "dram"

    def test_level_boundaries_inclusive(self):
        cm = CacheModel()
        assert cm.level_for(cm.config.l1_bytes) == "l1"
        assert cm.level_for(cm.config.l1_bytes + 1) == "l2"
        assert cm.level_for(cm.config.l2_bytes) == "l2"

    def test_energy_ordering(self):
        cm = CacheModel()
        assert (
            cm.energy_per_byte("l1")
            < cm.energy_per_byte("l2")
            < cm.energy_per_byte("dram")
        )

    def test_access_cost_scales_with_times(self):
        cm = CacheModel()
        once = cm.access(1000, times=1)
        thrice = cm.access(1000, times=3)
        assert thrice.energy_j == pytest.approx(3 * once.energy_j)

    def test_only_dram_costs_transfer_time(self):
        cm = CacheModel()
        on_chip = cm.access(1024 * 1024, times=2)
        assert on_chip.transfer_time_s == 0.0
        off_chip = cm.access(64 * 1024 * 1024)
        assert off_chip.transfer_time_s > 0
        assert off_chip.dram_bytes == 64 * 1024 * 1024

    def test_transfer_time_matches_bandwidth(self):
        cm = CacheModel()
        size = 256 * 1024 * 1024
        cost = cm.access(size)
        assert cost.transfer_time_s == pytest.approx(
            size / cm.config.dram_bandwidth_bytes_per_s
        )

    def test_rejects_unknown_level(self):
        with pytest.raises(ConfigError):
            CacheModel().energy_per_byte("l3")

    def test_rejects_negative_inputs(self):
        cm = CacheModel()
        with pytest.raises(ConfigError):
            cm.level_for(-1)
        with pytest.raises(ConfigError):
            cm.access(10, times=-1)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            CacheConfig(l1_bytes=0)
        with pytest.raises(ConfigError):
            CacheConfig(dram_energy_per_byte_j=-1.0)

    def test_paper_capacities(self):
        cfg = CacheConfig()
        assert cfg.l1_bytes == 16 * 1024
        assert cfg.l2_bytes == 32 * 1024 * 1024


class TestTable2Mapping:
    def test_three_modes(self):
        mapping = table2_mapping()
        assert set(mapping) == set(OperatingMode)

    def test_inference_encoding(self):
        enc = table2_mapping()[OperatingMode.INFERENCE]
        assert enc["mrr_weight_bank"] == "W_k"
        assert enc["input_laser_sources"] == "x_k"

    def test_gradient_encoding_uses_transpose_and_derivative(self):
        enc = table2_mapping()[OperatingMode.GRADIENT_VECTOR]
        assert "W_{k+1}^T" in enc["mrr_weight_bank"]
        assert "f'(h_k)" in enc["tia_eo_lasers"]

    def test_outer_product_encoding(self):
        enc = table2_mapping()[OperatingMode.OUTER_PRODUCT]
        assert "y_{k-1}^T" in enc["mrr_weight_bank"]
        assert "delta_h_k" in enc["input_laser_sources"]


class TestControlUnit:
    def test_starts_in_inference(self):
        assert ControlUnit().mode is OperatingMode.INFERENCE

    def test_mode_switch_counted(self):
        cu = ControlUnit()
        assert cu.set_mode(OperatingMode.GRADIENT_VECTOR)
        assert cu.mode_switches == 1

    def test_no_op_switch_not_counted(self):
        cu = ControlUnit()
        assert not cu.set_mode(OperatingMode.INFERENCE)
        assert cu.mode_switches == 0

    def test_rejects_non_mode(self):
        with pytest.raises(DeviceError):
            ControlUnit().set_mode("inference")

    def test_encoding_for_current_mode(self):
        cu = ControlUnit()
        cu.set_mode(OperatingMode.OUTER_PRODUCT)
        assert cu.encoding_for()["mrr_weight_bank"] == "y_{k-1}^T"


class TestRangeNormalizer:
    def test_in_range_untouched(self):
        v = np.array([0.5, -0.25])
        norm = RangeNormalizer.normalize(v)
        assert norm.scale == 1.0
        assert np.array_equal(norm.values, v)

    def test_overrange_scaled_to_unit(self):
        v = np.array([4.0, -2.0])
        norm = RangeNormalizer.normalize(v)
        assert norm.scale == 4.0
        assert np.max(np.abs(norm.values)) == pytest.approx(1.0)

    def test_restore_inverts(self):
        v = np.array([3.0, -1.5, 0.75])
        norm = RangeNormalizer.normalize(v)
        assert np.allclose(norm.restore(norm.values), v)

    def test_restore_is_linear(self):
        norm = RangeNormalizer.normalize(np.array([2.0]))
        assert float(norm.restore(0.5)) == pytest.approx(1.0)

    def test_rejects_non_finite(self):
        with pytest.raises(DeviceError):
            RangeNormalizer.normalize(np.array([np.nan]))
        with pytest.raises(DeviceError):
            RangeNormalizer.normalize(np.array([np.inf]))

    def test_empty_vector(self):
        norm = RangeNormalizer.normalize(np.array([]))
        assert norm.scale == 1.0

    def test_clip(self):
        out = RangeNormalizer.clip(np.array([-2.0, 0.5, 2.0]))
        assert np.array_equal(out, [-1.0, 0.5, 1.0])
