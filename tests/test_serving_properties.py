"""Property-based tests (hypothesis) on serving-layer invariants.

The invariants under test, per ISSUE acceptance criteria:

- **Conservation** — no admitted (or submitted) request is ever silently
  dropped: every request terminates exactly once, as a completion or a
  structured rejection.
- **Structured shedding** — every shed request carries a reason and
  human-readable detail.
- **Bounded retries** — no request is attempted more than
  ``max_retries + 1`` times.
- **Determinism** — replaying the same seed and arrival schedule yields
  a bit-identical admit/shed/dispatch decision sequence and outputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    InferenceRequest,
    ServerConfig,
    ShedReason,
    TridentServer,
    build_worker,
)

DIMS = (6, 4)

request_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5e-6),        # inter-arrival gap
        st.integers(min_value=0, max_value=2),           # priority
        st.one_of(st.none(), st.floats(1e-7, 2e-5)),     # deadline slack
    ),
    min_size=1,
    max_size=25,
)

server_knobs = st.fixed_dictionaries(
    {
        "max_queue_depth": st.integers(1, 6),
        "max_batch": st.integers(1, 4),
        "max_retries": st.integers(0, 2),
        "seed": st.integers(0, 2**16),
    }
)


def build_arrivals(specs):
    arrivals, t = [], 0.0
    rng = np.random.default_rng(0)
    for rid, (gap, priority, slack) in enumerate(specs):
        t += gap
        arrivals.append(
            InferenceRequest(
                request_id=rid,
                x=rng.uniform(-1, 1, DIMS[0]),
                arrival_s=t,
                deadline_s=None if slack is None else t + slack,
                priority=priority,
            )
        )
    return arrivals


def run_once(specs, knobs, degrade):
    worker = build_worker(0, DIMS, seed=11)
    config = ServerConfig(
        slo_latency_s=1e-5,
        breaker_failure_threshold=2,
        breaker_cooldown_s=1e-6,
        **knobs,
    )
    server = TridentServer([worker], config=config)
    arrivals = build_arrivals(specs)
    if degrade and arrivals:
        mid = arrivals[len(arrivals) // 2].arrival_s
        server.schedule_action(
            mid, "degrade", lambda s: s.workers[0].degrade(0.25, stuck_level=254)
        )
    return server.run(arrivals), server


class TestServingInvariants:
    @settings(max_examples=20, deadline=None)
    @given(specs=request_specs, knobs=server_knobs, degrade=st.booleans())
    def test_no_request_silently_dropped(self, specs, knobs, degrade):
        report, _ = run_once(specs, knobs, degrade)
        assert report.conservation_ok()
        completed = {c.request.request_id for c in report.completed}
        shed = {r.request.request_id for r in report.shed}
        assert completed | shed == {r.request_id for r in build_arrivals(specs)}
        assert not completed & shed

    @settings(max_examples=20, deadline=None)
    @given(specs=request_specs, knobs=server_knobs, degrade=st.booleans())
    def test_shed_requests_carry_reasons(self, specs, knobs, degrade):
        report, _ = run_once(specs, knobs, degrade)
        for rejection in report.shed:
            assert isinstance(rejection.reason, ShedReason)
            assert rejection.detail
            assert rejection.shed_s >= rejection.request.arrival_s

    @settings(max_examples=20, deadline=None)
    @given(specs=request_specs, knobs=server_knobs)
    def test_retries_never_exceed_budget(self, specs, knobs):
        # Always degrade so failures (and therefore retries) actually occur.
        report, server = run_once(specs, knobs, degrade=True)
        budget = server.config.max_retries + 1
        for completion in report.completed:
            assert 1 <= completion.attempts <= budget
        for rejection in report.shed:
            assert 0 <= rejection.attempts <= budget

    @settings(max_examples=10, deadline=None)
    @given(specs=request_specs, knobs=server_knobs, degrade=st.booleans())
    def test_same_seed_replays_identical_decisions(self, specs, knobs, degrade):
        first, _ = run_once(specs, knobs, degrade)
        second, _ = run_once(specs, knobs, degrade)
        assert first.decisions == second.decisions
        assert first.breaker_transitions == second.breaker_transitions
        for a, b in zip(first.completed, second.completed):
            assert a.request.request_id == b.request.request_id
            assert a.attempts == b.attempts
            assert np.array_equal(a.output, b.output)

    @settings(max_examples=10, deadline=None)
    @given(specs=request_specs, knobs=server_knobs)
    def test_deadline_met_flag_is_honest(self, specs, knobs):
        report, _ = run_once(specs, knobs, degrade=False)
        for completion in report.completed:
            deadline = completion.request.deadline_s
            expected = deadline is None or completion.finish_s <= deadline
            assert completion.deadline_met == expected
