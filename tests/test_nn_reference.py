"""Tests for the digital reference NN math (incl. gradient checks)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.reference import (
    DigitalMLP,
    conv2d_reference,
    cross_entropy_loss,
    gst_activation,
    gst_derivative,
    im2col,
    mse_loss,
    relu,
    relu_grad,
    softmax,
)


class TestActivations:
    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0, 0, 2])

    def test_relu_grad(self):
        assert np.array_equal(relu_grad(np.array([-1.0, 0.0, 2.0])), [0, 0, 1])

    def test_gst_activation_slope(self):
        assert np.allclose(gst_activation(np.array([2.0])), [0.68])

    def test_gst_derivative_two_valued(self):
        d = gst_derivative(np.array([-1.0, 1.0]))
        assert np.allclose(d, [0.0, 0.34])


class TestLosses:
    def test_mse_zero_at_match(self):
        loss, grad = mse_loss(np.ones(4), np.ones(4))
        assert loss == 0.0
        assert np.allclose(grad, 0.0)

    def test_mse_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=6)
        target = rng.normal(size=6)
        loss, grad = mse_loss(pred, target)
        eps = 1e-6
        for i in range(6):
            p = pred.copy()
            p[i] += eps
            num = (mse_loss(p, target)[0] - loss) / eps
            assert num == pytest.approx(grad[i], rel=1e-4, abs=1e-8)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ShapeError):
            mse_loss(np.ones(3), np.ones(4))

    def test_softmax_rows_sum_to_one(self):
        z = np.random.default_rng(1).normal(size=(5, 7))
        assert np.allclose(softmax(z).sum(axis=1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        out = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(out, 0.5)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        loss, _ = cross_entropy_loss(logits, np.array([0]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 1])
        loss, grad = cross_entropy_loss(logits, labels)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                z = logits.copy()
                z[i, j] += eps
                num = (cross_entropy_loss(z, labels)[0] - loss) / eps
                assert num == pytest.approx(grad[i, j], rel=1e-3, abs=1e-8)

    def test_cross_entropy_label_count_checked(self):
        with pytest.raises(ShapeError):
            cross_entropy_loss(np.zeros((2, 3)), np.array([0, 1, 2]))


class TestDigitalMLP:
    def test_forward_shapes(self):
        mlp = DigitalMLP([8, 6, 3], seed=0)
        out = mlp.forward(np.zeros((5, 8)))
        assert out.shape == (5, 3)

    def test_rejects_wrong_input_width(self):
        mlp = DigitalMLP([8, 3], seed=0)
        with pytest.raises(ShapeError):
            mlp.forward(np.zeros((2, 9)))

    def test_rejects_bad_dims_or_activation(self):
        with pytest.raises(ShapeError):
            DigitalMLP([5])
        with pytest.raises(ShapeError):
            DigitalMLP([5, 3], activation="swish")

    def test_gradients_match_finite_difference(self):
        """Backprop (the paper's Eqs. 1-3) against numerical gradients."""
        rng = np.random.default_rng(3)
        mlp = DigitalMLP([5, 4, 3], activation="gst", seed=1)
        x = rng.normal(size=(2, 5))
        labels = np.array([0, 2])

        def loss_at():
            return cross_entropy_loss(mlp.forward(x), labels)[0]

        base_loss, grad_out = cross_entropy_loss(mlp.forward(x), labels)
        grads = mlp.gradients(x, grad_out)
        eps = 1e-6
        for k, w in enumerate(mlp.weights):
            for idx in [(0, 0), (1, 2), (w.shape[0] - 1, w.shape[1] - 1)]:
                old = w[idx]
                w[idx] = old + eps
                num = (loss_at() - base_loss) / eps
                w[idx] = old
                assert num == pytest.approx(grads.weights[k][idx], rel=1e-3, abs=1e-6)

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(4)
        mlp = DigitalMLP([4, 8, 2], seed=5)
        x = rng.normal(size=(64, 4))
        labels = (x[:, 0] > 0).astype(int)
        first = mlp.train_step(x, labels, lr=0.5)
        for _ in range(50):
            last = mlp.train_step(x, labels, lr=0.5)
        assert last < first

    def test_accuracy_and_predict(self):
        mlp = DigitalMLP([2, 2], seed=0, weight_scale=1.0)
        mlp.weights[0] = np.array([[1.0, 0.0], [0.0, 1.0]])
        x = np.array([[3.0, 0.0], [0.0, 3.0]])
        assert np.array_equal(mlp.predict(x), [0, 1])
        assert mlp.accuracy(x, np.array([0, 1])) == 1.0


class TestIm2Col:
    def test_patch_count_and_width(self):
        img = np.arange(5 * 5 * 2, dtype=float).reshape(5, 5, 2)
        cols = im2col(img, kernel=3, stride=1, padding=0)
        assert cols.shape == (9, 18)

    def test_stride_and_padding(self):
        img = np.ones((4, 4, 1))
        cols = im2col(img, kernel=2, stride=2, padding=0)
        assert cols.shape == (4, 4)
        padded = im2col(img, kernel=3, stride=1, padding=1)
        assert padded.shape == (16, 9)

    def test_rejects_bad_rank(self):
        with pytest.raises(ShapeError):
            im2col(np.ones((4, 4)), 2, 1, 0)

    def test_conv_reference_matches_manual(self):
        rng = np.random.default_rng(6)
        img = rng.normal(size=(5, 5, 2))
        filt = rng.normal(size=(3, 2, 2, 2))  # K=3, R=2, C=2
        out = conv2d_reference(img, filt, stride=1, padding=0)
        assert out.shape == (4, 4, 3)
        # Check one output element by hand.
        manual = np.sum(img[0:2, 0:2, :] * filt[0])
        assert out[0, 0, 0] == pytest.approx(manual)

    def test_conv_reference_channel_mismatch(self):
        with pytest.raises(ShapeError):
            conv2d_reference(np.ones((4, 4, 3)), np.ones((2, 2, 2, 2)))

    def test_conv_gemm_dims_match_layer_descriptor(self):
        """The executable conv and the Conv2D descriptor must agree on the
        GEMM the layer lowers to."""
        from repro.nn.layers import Conv2D, TensorShape

        rng = np.random.default_rng(7)
        img = rng.normal(size=(8, 8, 4))
        conv = Conv2D("c", 6, kernel=3, stride=1, padding=1)
        g = conv.gemm([TensorShape(8, 8, 4)])
        cols = im2col(img, 3, 1, 1)
        assert cols.shape == (g.n, g.k)
        filt = rng.normal(size=(6, 3, 3, 4))
        out = conv2d_reference(img, filt, stride=1, padding=1)
        assert out.shape[2] == g.m
