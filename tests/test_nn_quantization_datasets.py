"""Tests for quantization and synthetic datasets."""

import numpy as np
import pytest

from repro.errors import ConfigError, ProgrammingError
from repro.nn.datasets import (
    Dataset,
    make_blobs,
    make_moons,
    make_teacher,
    one_hot,
    standardize,
)
from repro.nn.quantization import (
    QuantizedTensor,
    UniformQuantizer,
    quantization_snr_db,
    quantize_tensor,
)


class TestUniformQuantizer:
    def test_from_bits(self):
        assert UniformQuantizer.from_bits(8).levels == 255
        assert UniformQuantizer.from_bits(6).levels == 63

    def test_endpoints(self):
        q = UniformQuantizer(255)
        assert q.quantize(np.array([-1.0])) == 0
        assert q.quantize(np.array([1.0])) == 254

    def test_roundtrip_within_half_step(self):
        q = UniformQuantizer(255)
        v = np.linspace(-1, 1, 999)
        assert np.max(np.abs(q.roundtrip(v) - v)) <= q.step / 2 + 1e-12

    def test_six_bit_coarser_than_eight(self):
        v = np.linspace(-1, 1, 999)
        e8 = np.max(np.abs(UniformQuantizer.from_bits(8).roundtrip(v) - v))
        e6 = np.max(np.abs(UniformQuantizer.from_bits(6).roundtrip(v) - v))
        assert e6 > e8

    def test_rejects_overrange(self):
        with pytest.raises(ProgrammingError):
            UniformQuantizer(255).quantize(np.array([1.01]))

    def test_dequantize_rejects_bad_levels(self):
        with pytest.raises(ProgrammingError):
            UniformQuantizer(255).dequantize(np.array([255]))

    def test_max_error(self):
        q = UniformQuantizer(255)
        assert q.max_error() == pytest.approx(q.step / 2)

    def test_rejects_single_level(self):
        with pytest.raises(ProgrammingError):
            UniformQuantizer(1)


class TestQuantizeTensor:
    def test_scale_restores_range(self, rng):
        w = rng.normal(0, 2, size=(8, 8))
        qt = quantize_tensor(w, bits=8)
        assert isinstance(qt, QuantizedTensor)
        assert np.max(np.abs(qt.values - w)) <= qt.scale * qt.quantizer.step / 2 + 1e-12

    def test_zero_tensor(self):
        qt = quantize_tensor(np.zeros((3, 3)))
        assert np.allclose(qt.values, 0.0)

    def test_snr_improves_with_bits(self, rng):
        w = rng.normal(size=1000)
        assert quantization_snr_db(w, 8) > quantization_snr_db(w, 6) + 10

    def test_snr_8bit_is_about_50db(self, rng):
        w = rng.uniform(-1, 1, 10000)
        assert 45 < quantization_snr_db(w, 8) < 60

    def test_snr_rejects_zero_tensor(self):
        with pytest.raises(ProgrammingError):
            quantization_snr_db(np.zeros(4))


class TestDataset:
    def test_properties(self):
        d = make_blobs(n_samples=100, n_features=5, n_classes=3, seed=0)
        assert d.n_samples == 100
        assert d.n_features == 5
        assert d.n_classes == 3

    def test_split_partitions(self):
        d = make_blobs(n_samples=100, seed=0)
        tr, te = d.split(0.75, seed=1)
        assert tr.n_samples == 75
        assert te.n_samples == 25

    def test_split_disjoint_and_complete(self):
        d = make_blobs(n_samples=50, n_features=2, seed=0)
        tr, te = d.split(0.8, seed=1)
        combined = np.vstack([tr.x, te.x])
        assert combined.shape == d.x.shape
        # Every original row appears exactly once.
        orig = {tuple(row) for row in d.x}
        got = {tuple(row) for row in combined}
        assert orig == got

    def test_split_rejects_degenerate_fraction(self):
        d = make_blobs(n_samples=10, seed=0)
        with pytest.raises(ConfigError):
            d.split(1.5)

    def test_batches_cover_everything(self):
        d = make_blobs(n_samples=37, seed=0)
        total = sum(len(y) for _, y in d.batches(8, seed=3))
        assert total == 37

    def test_batches_shuffled_by_seed(self):
        d = make_blobs(n_samples=32, seed=0)
        a = next(iter(d.batches(32, seed=1)))[1]
        b = next(iter(d.batches(32, seed=2)))[1]
        assert not np.array_equal(a, b)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigError):
            Dataset(x=np.zeros((5, 2)), y=np.zeros(4, dtype=int))


class TestGenerators:
    def test_blobs_deterministic(self):
        a = make_blobs(seed=7)
        b = make_blobs(seed=7)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.y, b.y)

    def test_blobs_separable_when_tight(self):
        d = make_blobs(n_samples=200, spread=0.05, seed=0)
        # Nearest-centroid should be nearly perfect at tiny spread.
        centroids = np.stack([d.x[d.y == k].mean(axis=0) for k in range(d.n_classes)])
        pred = np.argmin(
            np.linalg.norm(d.x[:, None, :] - centroids[None], axis=2), axis=1
        )
        assert np.mean(pred == d.y) > 0.95

    def test_moons_binary_2d(self):
        d = make_moons(n_samples=100, seed=0)
        assert d.n_features == 2
        assert d.n_classes == 2

    def test_teacher_labels_in_range(self):
        d = make_teacher(n_samples=100, n_classes=4, seed=0)
        assert set(np.unique(d.y)) <= set(range(4))

    def test_generator_validation(self):
        with pytest.raises(ConfigError):
            make_blobs(n_samples=1, n_classes=4)
        with pytest.raises(ConfigError):
            make_moons(n_samples=2)
        with pytest.raises(ConfigError):
            make_teacher(n_classes=1)


class TestHelpers:
    def test_standardize(self, rng):
        x = rng.normal(5, 3, size=(200, 4))
        z = standardize(x)
        assert np.allclose(z.mean(axis=0), 0, atol=1e-12)
        assert np.allclose(z.std(axis=0), 1, atol=1e-12)

    def test_standardize_constant_feature(self):
        x = np.ones((10, 2))
        z = standardize(x)
        assert np.all(np.isfinite(z))

    def test_one_hot(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        assert np.array_equal(out, np.array([[1, 0, 0], [0, 0, 1], [0, 1, 0]], dtype=float))

    def test_one_hot_rejects_out_of_range(self):
        with pytest.raises(ConfigError):
            one_hot(np.array([3]), 3)
