"""Tests for iterative program-and-verify PCM writing."""

import numpy as np
import pytest

from repro.devices.program_verify import (
    ProgramVerifyConfig,
    ProgramVerifyWriter,
)
from repro.errors import ConfigError, ProgrammingError


@pytest.fixture
def writer():
    return ProgramVerifyWriter(seed=1)


class TestConfig:
    def test_defaults_valid(self):
        cfg = ProgramVerifyConfig()
        assert cfg.levels == 255
        assert cfg.max_iterations == 10

    def test_validation(self):
        with pytest.raises(ConfigError):
            ProgramVerifyConfig(write_std_levels=-1)
        with pytest.raises(ConfigError):
            ProgramVerifyConfig(tolerance_levels=0)
        with pytest.raises(ConfigError):
            ProgramVerifyConfig(max_iterations=0)
        with pytest.raises(ConfigError):
            ProgramVerifyConfig(levels=1)


class TestWrite:
    def test_targets_validated(self, writer):
        with pytest.raises(ProgrammingError):
            writer.write(np.array([300.0]))
        with pytest.raises(ProgrammingError):
            writer.write(np.array([-1.0]))

    def test_converges_with_default_noise(self, writer):
        targets = np.random.default_rng(0).integers(0, 255, size=(16, 16))
        result = writer.write(targets)
        assert result.convergence_rate > 0.95
        assert result.achieved_levels.shape == (16, 16)

    def test_achieved_near_targets(self, writer):
        targets = np.full((16, 16), 128.0)
        result = writer.write(targets)
        errors = result.level_errors(targets)
        # Converged cells verified within tolerance + read noise slack.
        cfg = writer.config
        slack = cfg.tolerance_levels + 4 * cfg.read_std_levels
        assert np.abs(errors[result.converged]).max() <= slack

    def test_multiple_pulses_needed_on_average(self, writer):
        targets = np.full(1000, 100.0)
        result = writer.write(targets)
        # write_std 1.5 vs tolerance 1.0: acceptance < 1, so mean > 1.
        assert result.mean_pulses_per_cell > 1.0

    def test_noiseless_writer_single_pulse(self):
        cfg = ProgramVerifyConfig(write_std_levels=0.0, read_std_levels=0.0)
        result = ProgramVerifyWriter(cfg, seed=0).write(np.arange(255.0))
        assert result.total_pulses == 255
        assert result.convergence_rate == 1.0
        assert np.array_equal(result.achieved_levels, np.arange(255.0))

    def test_impossible_tolerance_hits_iteration_cap(self):
        cfg = ProgramVerifyConfig(
            write_std_levels=50.0, tolerance_levels=0.1, max_iterations=4
        )
        result = ProgramVerifyWriter(cfg, seed=0).write(np.full(200, 128.0))
        assert result.pulses.max() == 4
        assert result.convergence_rate < 0.5

    def test_seeded_repeatability(self):
        targets = np.random.default_rng(1).integers(0, 255, size=64)
        a = ProgramVerifyWriter(seed=9).write(targets)
        b = ProgramVerifyWriter(seed=9).write(targets)
        assert np.array_equal(a.achieved_levels, b.achieved_levels)
        assert np.array_equal(a.pulses, b.pulses)

    def test_energy_accounts_pulses_and_reads(self, writer):
        result = writer.write(np.full(10, 100.0))
        cfg = writer.config
        expected = (
            result.total_pulses * cfg.write_energy_j
            + result.total_reads * cfg.read_energy_j
        )
        assert result.energy_j == pytest.approx(expected)

    def test_one_read_per_pulse(self, writer):
        result = writer.write(np.full(100, 50.0))
        assert result.total_reads == result.total_pulses


class TestExpectedPulses:
    def test_matches_monte_carlo(self):
        writer = ProgramVerifyWriter(seed=3)
        targets = np.full(20000, 128.0)
        result = writer.write(targets)
        assert result.mean_pulses_per_cell == pytest.approx(
            writer.expected_pulses_per_cell(), rel=0.05
        )

    def test_noiseless_expectation_is_one(self):
        cfg = ProgramVerifyConfig(write_std_levels=0.0, read_std_levels=0.0)
        assert ProgramVerifyWriter(cfg).expected_pulses_per_cell() == 1.0

    def test_tighter_tolerance_needs_more_pulses(self):
        loose = ProgramVerifyWriter(ProgramVerifyConfig(tolerance_levels=2.0))
        tight = ProgramVerifyWriter(ProgramVerifyConfig(tolerance_levels=0.5))
        assert (
            tight.expected_pulses_per_cell() > loose.expected_pulses_per_cell()
        )
