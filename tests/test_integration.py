"""Cross-module integration tests: the paper's headline results end-to-end."""

import numpy as np
import pytest

from repro import InSituTrainer, NoiseModel, TridentAccelerator, TridentConfig
from repro.arch.area import AreaModel
from repro.arch.power import PowerModel
from repro.baselines import photonic_baselines
from repro.dataflow.cost_model import PhotonicArch, PhotonicCostModel
from repro.eval.figures import fig4_photonic_energy, fig6_inferences_per_second
from repro.eval.tables import table3_power, table5_training
from repro.nn import build_model
from repro.nn.datasets import Dataset, make_teacher, standardize
from repro.nn.quantization import quantize_tensor
from repro.nn.reference import DigitalMLP
from repro.training.trainer import train_classifier


class TestPaperHeadlines:
    """Each assertion is a sentence from the paper's abstract/conclusion."""

    def test_44_pes_256_mrrs_at_30w(self):
        cfg = TridentConfig()
        assert cfg.n_pes == 44
        assert cfg.mrrs_per_pe == 256
        assert PowerModel(cfg).fits_budget()

    def test_chip_under_one_square_inch(self):
        assert AreaModel(TridentConfig()).fits_one_square_inch

    def test_energy_improvement_up_to_43_pct(self):
        report = fig4_photonic_energy()
        best = max(c.measured_value for c in report.comparisons)
        assert best == pytest.approx(43.5, abs=1.5)

    def test_latency_improvement_up_to_150_pct(self):
        report = fig6_inferences_per_second()
        photonic = [c.measured_value for c in report.comparisons
                    if c.metric in ("vs deap-cnn", "vs crosslight", "vs pixel")]
        assert max(photonic) == pytest.approx(150.2, abs=3.0)

    def test_2x_tuning_speedup_vs_thermal(self):
        from repro.devices.tuning import GSTTuning, ThermalTuning

        assert ThermalTuning().write_time_s / GSTTuning().write_time_s == pytest.approx(2.0)

    def test_post_tuning_power_drop(self):
        cfg = TridentConfig()
        assert cfg.pe_total_power_w == pytest.approx(0.676, abs=0.001)
        assert cfg.pe_streaming_power_w == pytest.approx(0.113, abs=0.001)

    def test_table3_and_fig4_use_same_device_parameters(self):
        """The cost model's Trident point must be derived from the same
        config that regenerates Table III."""
        cfg = TridentConfig()
        arch = PhotonicArch.trident(cfg)
        report = table3_power(cfg)
        total_row = [r for r in report.rows if r[0] == "Total"][0]
        assert arch.sizing_power_pe_w * 1e3 == pytest.approx(total_row[1])


class TestInSituVsOfflineMismatch:
    """The paper's motivation (Sec. I): offline-trained weights deployed on
    analog hardware lose accuracy to quantization/noise mismatch; in-situ
    training absorbs it."""

    @pytest.fixture(scope="class")
    def task(self):
        data = make_teacher(n_samples=400, n_features=10, n_classes=3, seed=5)
        data = Dataset(x=np.clip(standardize(data.x) / 3, -1, 1), y=data.y)
        return data.split(0.8, seed=1)

    def _hw(self, dims, weights, noise):
        acc = TridentAccelerator(noise=noise)
        acc.map_mlp(dims)
        acc.set_weights([w.copy() for w in weights])
        return acc

    def test_insitu_training_closes_the_gap(self, task):
        train, test = task
        dims = [10, 14, 3]
        noise = NoiseModel(enabled=True, thermal_noise_std=0.01,
                           shot_noise_coeff=0.01, rin_coeff=0.005, seed=11)

        # Offline: train digitally, deploy onto noisy quantized hardware.
        digital = DigitalMLP(dims, activation="gst", seed=7)
        for epoch in range(8):
            for xb, yb in train.batches(16, seed=epoch):
                digital.train_step(xb, yb, lr=0.3)
        deployed = self._hw(dims, digital.weights, noise)
        offline_acc = float(np.mean(
            np.argmax(deployed.forward_batch(test.x), axis=1) == test.y
        ))

        # In-situ: train on the same noisy hardware.
        acc = self._hw(dims, DigitalMLP(dims, activation="gst", seed=7).weights, noise)
        trainer = InSituTrainer(acc, lr=0.3)
        hist = train_classifier(trainer, train, test, epochs=8, batch_size=16)

        digital_acc = digital.accuracy(test.x, test.y)
        # In-situ hardware accuracy approaches the digital ceiling.
        assert hist.final_test_accuracy >= offline_acc - 0.05
        assert hist.final_test_accuracy >= digital_acc - 0.1


class TestQuantizationResolutionStory:
    """Sec. II-B: 6-bit (thermal) resolution breaks training; 8 bits work."""

    def test_8bit_weights_preserve_accuracy_6bit_degrade_more(self):
        data = make_teacher(n_samples=300, n_features=8, n_classes=3, seed=3)
        data = Dataset(x=np.clip(standardize(data.x) / 3, -1, 1), y=data.y)
        train, test = data.split(0.8, seed=2)
        mlp = DigitalMLP([8, 12, 3], activation="gst", seed=4)
        for epoch in range(10):
            for xb, yb in train.batches(16, seed=epoch):
                mlp.train_step(xb, yb, lr=0.3)
        base = mlp.accuracy(test.x, test.y)

        def quantized_accuracy(bits):
            q = DigitalMLP([8, 12, 3], activation="gst", seed=4)
            q.weights = [quantize_tensor(w, bits).values for w in mlp.weights]
            return q.accuracy(test.x, test.y)

        drop8 = base - quantized_accuracy(8)
        drop4 = base - quantized_accuracy(4)
        assert drop8 <= 0.05
        assert drop4 >= drop8


class TestBudgetScalingConsistency:
    def test_all_archs_scale_with_budget(self):
        for budget in (10.0, 30.0, 60.0):
            for arch in photonic_baselines(budget):
                assert arch.n_pes * arch.sizing_power_pe_w <= budget

    def test_throughput_grows_with_budget(self):
        net = build_model("resnet50")
        ips = []
        for budget in (10.0, 30.0, 60.0):
            arch = [a for a in photonic_baselines(budget) if a.name == "trident"][0]
            ips.append(PhotonicCostModel(arch, batch=128).model_cost(net).inferences_per_second)
        assert ips[0] < ips[1] < ips[2]


class TestTableVShape:
    def test_sign_pattern(self):
        """Trident wins VGG-16 and ResNet-50, loses GoogleNet (the paper's
        crossover); MobileNetV2 is the documented deviation."""
        report = table5_training()
        rows = {r[0]: (r[1], r[2]) for r in report.rows}
        assert rows["vgg16"][1] < rows["vgg16"][0]
        assert rows["resnet50"][1] < rows["resnet50"][0]
        assert rows["googlenet"][1] > rows["googlenet"][0]
