"""Tests: physical WDM crosstalk and its calibration compensation.

Ties the physical tier to the functional tier: the cascaded-ring leakage
matrix from :mod:`repro.optics.spectrum` degrades a naive bank, and the
control unit's pre-compensation (``W' = W C^{-1}``) absorbs it — the
per-weight calibration story quantified end to end.
"""

import numpy as np
import pytest

from repro.arch.weight_bank import WeightBank, compensate_crosstalk
from repro.devices.waveguide import WDMChannelPlan
from repro.errors import ProgrammingError, ShapeError
from repro.optics import physical_crosstalk_matrix


@pytest.fixture(scope="module")
def crosstalk():
    return physical_crosstalk_matrix(WDMChannelPlan(8))


class TestCompensationMath:
    def test_exact_inverse_property(self, crosstalk, rng):
        w = rng.uniform(-0.5, 0.5, (8, 8))
        comp = compensate_crosstalk(w, crosstalk)
        assert np.allclose(comp @ crosstalk, w, atol=1e-12)

    def test_identity_crosstalk_is_noop(self, rng):
        w = rng.uniform(-1, 1, (4, 4))
        assert np.allclose(compensate_crosstalk(w, np.eye(4)), w)

    def test_shape_validation(self, crosstalk):
        with pytest.raises(ShapeError):
            compensate_crosstalk(np.zeros((4, 7)), crosstalk)
        with pytest.raises(ShapeError):
            compensate_crosstalk(np.zeros((4, 4)), np.zeros((4, 5)))

    def test_singular_matrix_rejected(self):
        singular = np.ones((4, 4))
        with pytest.raises(ProgrammingError):
            compensate_crosstalk(np.full((4, 4), 0.1), singular)

    def test_overrange_compensation_rejected(self):
        # Strong leakage + alternating full-swing weights: the inverse
        # amplifies beyond the programmable range.
        c = np.eye(4) + 0.3 * (np.ones((4, 4)) - np.eye(4))
        w = np.tile(np.array([[1.0, -1.0, 1.0, -1.0]]), (4, 1))
        with pytest.raises(ProgrammingError):
            compensate_crosstalk(w, c)


class TestEndToEnd:
    def test_compensation_restores_mvm_accuracy(self, crosstalk, rng):
        w = rng.uniform(-0.6, 0.6, (8, 8))
        x = rng.uniform(-1, 1, 8)

        naive = WeightBank(rows=8, cols=8, crosstalk=crosstalk)
        naive.program(w)
        naive_err = np.max(np.abs(naive.matvec(x) - w @ x))

        comp = WeightBank(rows=8, cols=8, crosstalk=crosstalk)
        comp.program(compensate_crosstalk(w, crosstalk))
        comp_err = np.max(np.abs(comp.matvec(x) - w @ x))

        assert comp_err < naive_err / 3
        # Compensated error is quantization-floor scale.
        assert comp_err < 8 * comp.weight_step

    def test_compensation_restores_classifier_accuracy(self, rng):
        """A trained network deployed onto a leaky WDM bank: uncompensated
        crosstalk costs accuracy; calibration recovers it."""
        from repro.nn.datasets import Dataset, make_blobs, standardize
        from repro.nn.reference import DigitalMLP

        plan = WDMChannelPlan(10)
        c10 = physical_crosstalk_matrix(plan)
        dims = [10, 14, 3]
        data = make_blobs(n_samples=300, n_features=10, n_classes=3, spread=2.0, seed=5)
        data = Dataset(x=np.clip(standardize(data.x) / 3, -1, 1), y=data.y)
        train, test = data.split(0.8, seed=1)
        mlp = DigitalMLP(dims, activation="gst", seed=7)
        for epoch in range(8):
            for xb, yb in train.batches(16, seed=epoch):
                mlp.train_step(xb, yb, lr=0.4)
        clean_acc = mlp.accuracy(test.x, test.y)

        def deploy(compensate: bool) -> float:
            # First layer sees the WDM bus (10 channels); evaluate its
            # crosstalk effect digitally via the realized effective matrix.
            w0 = mlp.weights[0]
            # Normalize with 1.5x headroom so compensation stays in range.
            scale = 1.5 * max(1.0, float(np.max(np.abs(w0))))
            target = w0 / scale
            bank = WeightBank(rows=14, cols=10, crosstalk=c10)
            bank.program(
                compensate_crosstalk(target, c10) if compensate else target
            )
            eval_mlp = DigitalMLP(dims, activation="gst", seed=7)
            eval_mlp.weights = [w.copy() for w in mlp.weights]
            eval_mlp.weights[0] = (bank.realized_weights[:14, :10] @ c10) * scale
            return eval_mlp.accuracy(test.x, test.y)

        naive_acc = deploy(compensate=False)
        comp_acc = deploy(compensate=True)
        assert comp_acc >= naive_acc
        assert comp_acc >= clean_acc - 0.05
