"""Tests for Direct Feedback Alignment training."""

import numpy as np
import pytest

from repro import TridentAccelerator
from repro.arch.config import TridentConfig
from repro.errors import MappingError, ShapeError
from repro.nn.datasets import Dataset, make_blobs, standardize
from repro.nn.reference import DigitalMLP
from repro.training.dfa import DFATrainer, DigitalDFA
from repro.training.insitu import InSituTrainer
from repro.training.trainer import train_classifier

DIMS = [8, 12, 3]


@pytest.fixture
def task():
    data = make_blobs(n_samples=240, n_features=8, n_classes=3, spread=0.8, seed=1)
    data = Dataset(x=np.clip(standardize(data.x) / 3, -1, 1), y=data.y)
    return data.split(0.8, seed=0)


def make_accelerator(seed=2):
    acc = TridentAccelerator()
    acc.map_mlp(DIMS)
    acc.set_weights(
        [w.copy() for w in DigitalMLP(DIMS, activation="gst", seed=seed).weights]
    )
    return acc


class TestDigitalDFA:
    def test_reduces_loss(self, task, rng):
        train, _ = task
        dfa = DigitalDFA(DIMS, seed=3)
        first = dfa.train_step(train.x[:32], train.y[:32], lr=0.3)
        for _ in range(15):
            last = dfa.train_step(train.x[:32], train.y[:32], lr=0.3)
        assert last < first

    def test_feedback_matrices_fixed(self, task):
        train, _ = task
        dfa = DigitalDFA(DIMS, seed=3)
        before = [b.copy() for b in dfa.feedback]
        dfa.train_step(train.x[:16], train.y[:16], lr=0.3)
        for b0, b1 in zip(before, dfa.feedback):
            assert np.array_equal(b0, b1)

    def test_learns_blobs(self, task):
        # Note: DFA is seed-sensitive (random feedback alignment can stall
        # — part of why the paper prefers true gradients); seed 4 aligns.
        train, test = task
        dfa = DigitalDFA(DIMS, seed=4)

        class Wrap:
            def train_step(self, x, y):
                return dfa.train_step(x, y, lr=0.3)

            def accuracy(self, x, y):
                return dfa.accuracy(x, y)

        hist = train_classifier(Wrap(), train, test, epochs=8, batch_size=16)
        assert hist.final_test_accuracy > 0.85


class TestDFATrainerConstruction:
    def test_requires_mapped_network(self):
        with pytest.raises(MappingError):
            DFATrainer(TridentAccelerator())

    def test_rejects_tiled_layers(self):
        acc = TridentAccelerator()
        acc.map_mlp([40, 24, 4])
        with pytest.raises(MappingError):
            DFATrainer(acc)

    def test_rejects_bad_lr(self):
        with pytest.raises(MappingError):
            DFATrainer(make_accelerator(), lr=0.0)

    def test_dedicated_feedback_pes_counted_against_budget(self):
        acc = TridentAccelerator(config=TridentConfig(n_pes=2))
        acc.map_mlp(DIMS)
        acc.set_weights(
            [w.copy() for w in DigitalMLP(DIMS, activation="gst", seed=0).weights]
        )
        with pytest.raises(MappingError):
            DFATrainer(acc, dedicated_feedback=True)

    def test_feedback_programmed_exactly_once(self):
        trainer = DFATrainer(make_accelerator(), seed=4)
        assert trainer.feedback_writes == len(DIMS) - 2  # one hidden layer


class TestDFATraining:
    def test_learns_blobs_photonically(self, task):
        train, test = task
        trainer = DFATrainer(make_accelerator(), lr=0.3, seed=4)
        hist = train_classifier(trainer, train, test, epochs=8, batch_size=16)
        assert hist.final_test_accuracy > 0.85

    def test_dedicated_feedback_saves_bank_writes(self, task):
        """DFA's hardware advantage: resident feedback matrices mean the
        backward projection costs no retuning.  The fair comparison is the
        per-sample streaming schedule DFA itself runs — backprop's batched
        schedule already amortizes the W^T reprogram digitally."""
        train, _ = task
        acc_dfa = make_accelerator()
        dfa = DFATrainer(acc_dfa, lr=0.3, seed=4)
        acc_bp = make_accelerator()
        bp = InSituTrainer(acc_bp, lr=0.3)
        for xb, yb in train.batches(16, seed=0):
            dfa.train_step(xb, yb)
            bp.train_step_streaming(xb, yb)
        assert acc_dfa.counters.bank_writes < acc_bp.counters.bank_writes
        # The feedback bank itself was written exactly once.
        assert dfa.feedback_writes == 1

    def test_non_dedicated_mode_costs_writes(self, task):
        train, _ = task
        acc_a = make_accelerator()
        dedicated = DFATrainer(acc_a, lr=0.3, seed=4, dedicated_feedback=True)
        acc_b = make_accelerator()
        shared = DFATrainer(acc_b, lr=0.3, seed=4, dedicated_feedback=False)
        xb, yb = train.x[:16], train.y[:16]
        dedicated.train_step(xb, yb)
        shared.train_step(xb, yb)
        assert acc_b.counters.bank_writes > acc_a.counters.bank_writes

    def test_batch_shape_checked(self):
        trainer = DFATrainer(make_accelerator(), seed=4)
        with pytest.raises(ShapeError):
            trainer.train_step(np.zeros((4, 8)), np.zeros(3, dtype=int))

    def test_predict_shapes(self, task):
        _, test = task
        trainer = DFATrainer(make_accelerator(), seed=4)
        assert trainer.predict(test.x).shape == (test.n_samples,)
