"""Tests for the physical optical layer (spectrum, bank, link budget)."""

import numpy as np
import pytest

from repro.arch.weight_bank import WeightBank
from repro.devices.mrr import AddDropMRR
from repro.devices.waveguide import WDMChannelPlan
from repro.errors import ConfigError, DeviceError, ProgrammingError, ShapeError
from repro.optics import (
    BusSpectrum,
    LinkBudget,
    PhysicalWeightBank,
    best_design,
    cascade_through,
    design_space,
    evaluate_design,
    physical_crosstalk_matrix,
)
from repro.optics.spectrum import tuned_ring


class TestTunedRing:
    def test_resonance_lands_on_target(self):
        ring = tuned_ring(AddDropMRR(), 1552e-9)
        assert ring.geometry.nearest_resonance(1552e-9) == pytest.approx(1552e-9, abs=1e-15)

    def test_geometry_otherwise_preserved(self):
        base = AddDropMRR()
        ring = tuned_ring(base, 1552e-9)
        assert ring.geometry.radius_m == base.geometry.radius_m
        assert ring.input_coupling == base.input_coupling

    def test_rejects_bad_wavelength(self):
        with pytest.raises(DeviceError):
            tuned_ring(AddDropMRR(), 0.0)


class TestCascade:
    def test_monotone_depletion_along_bus(self):
        plan = WDMChannelPlan(8)
        rings = [tuned_ring(AddDropMRR(), float(l)) for l in plan.wavelengths]
        out = cascade_through(rings, plan.wavelengths)
        assert out.shape == (9, 8)
        # Power can only decrease along a passive bus.
        assert np.all(np.diff(out, axis=0) <= 1e-12)

    def test_input_row_is_unity(self):
        plan = WDMChannelPlan(4)
        rings = [tuned_ring(AddDropMRR(), float(l)) for l in plan.wavelengths]
        out = cascade_through(rings, plan.wavelengths)
        assert np.allclose(out[0], 1.0)


class TestBusSpectrum:
    @pytest.fixture(scope="class")
    def spectrum(self):
        return BusSpectrum.build(WDMChannelPlan(8))

    def test_first_channel_undepleted(self, spectrum):
        assert spectrum.depletion()[0] == pytest.approx(1.0)

    def test_depletion_decreases_down_the_chain(self, spectrum):
        d = spectrum.depletion()
        assert np.all(np.diff(d) < 1e-12)
        assert d[-1] < 1.0

    def test_served_matrix_diagonal_dominant(self, spectrum):
        s = spectrum.served_power_matrix()
        for i in range(8):
            assert s[i, i] > s[i].sum() - s[i, i]

    def test_crosstalk_negative_db(self, spectrum):
        assert spectrum.crosstalk_db() < 0

    def test_effective_bits_nonnegative(self, spectrum):
        assert spectrum.effective_bits() >= 0

    def test_gst_states_change_spectrum(self):
        plan = WDMChannelPlan(4)
        clean = BusSpectrum.build(plan)
        lossy = BusSpectrum.build(plan, extra_losses=np.full(4, 0.7))
        assert not np.allclose(
            clean.served_power_matrix(), lossy.served_power_matrix()
        )

    def test_physical_crosstalk_matrix_normalized(self):
        x = physical_crosstalk_matrix(WDMChannelPlan(6))
        assert x.shape == (6, 6)
        assert np.allclose(np.diag(x), 1.0)
        assert np.all(x >= 0)


class TestPhysicalWeightBank:
    @pytest.fixture
    def bank(self):
        return PhysicalWeightBank(rows=8, plan=WDMChannelPlan(8))

    def test_program_shape_checked(self, bank):
        with pytest.raises(ShapeError):
            bank.program(np.zeros((4, 8)))

    def test_program_rejects_overrange(self, bank):
        with pytest.raises(ProgrammingError):
            bank.program(np.full((8, 8), 1.5))

    def test_forward_requires_programming(self, bank):
        with pytest.raises(ProgrammingError):
            bank.forward(np.zeros(8))

    def test_forward_rejects_negative_amplitudes(self, bank, rng):
        bank.program(rng.uniform(-1, 1, (8, 8)))
        with pytest.raises(DeviceError):
            bank.forward(np.array([-0.1] + [0.0] * 7))

    def test_matches_normalized_bank_exactly(self, bank, rng):
        """The physical link (watts -> amps -> normalized) must agree with
        the normalized-domain WeightBank."""
        w = rng.uniform(-1, 1, (8, 8))
        bank.program(w)
        normalized = WeightBank(rows=8, cols=8)
        normalized.program(w)
        x = rng.uniform(0, 1, 8)
        out = bank.forward(x)
        assert np.max(np.abs(out.normalized - normalized.matvec(x))) < 1e-6

    def test_expected_matches_forward_without_noise(self, bank, rng):
        w = rng.uniform(-1, 1, (8, 8))
        bank.program(w)
        x = rng.uniform(0, 1, 8)
        out = bank.forward(x)
        assert np.allclose(out.normalized, bank.expected_normalized(x), atol=1e-9)

    def test_currents_are_microamp_scale(self, bank, rng):
        bank.program(rng.uniform(-1, 1, (8, 8)))
        out = bank.forward(np.full(8, 0.5))
        assert np.max(np.abs(out.currents_a)) < 1e-3
        assert np.max(np.abs(out.currents_a)) > 1e-9

    def test_noise_perturbs_but_preserves_mean(self, rng):
        bank = PhysicalWeightBank(
            rows=4, plan=WDMChannelPlan(4), noise_enabled=True, seed=3
        )
        w = rng.uniform(-1, 1, (4, 4))
        bank.program(w)
        x = rng.uniform(0, 1, 4)
        outs = np.stack([bank.forward(x).normalized for _ in range(300)])
        assert np.allclose(outs.mean(axis=0), bank.expected_normalized(x), atol=0.02)
        assert outs.std(axis=0).max() > 0

    def test_snr_decreases_with_more_rows(self, rng):
        """More fan-out -> less power per row -> lower SNR."""
        w8 = rng.uniform(0.5, 1, (8, 8))
        small = PhysicalWeightBank(rows=8, plan=WDMChannelPlan(8))
        small.program(w8)
        big = PhysicalWeightBank(rows=32, plan=WDMChannelPlan(8))
        big.program(np.tile(w8, (4, 1)))
        x = np.full(8, 1.0)
        assert small.forward(x).snr_db.mean() > big.forward(x).snr_db.mean()

    def test_validation(self):
        with pytest.raises(ShapeError):
            PhysicalWeightBank(rows=0)
        with pytest.raises(DeviceError):
            PhysicalWeightBank(channel_power_w=0.0)
        with pytest.raises(DeviceError):
            PhysicalWeightBank(modulator_transmission=1.5)


class TestLinkBudget:
    @pytest.fixture(scope="class")
    def budget(self):
        return LinkBudget()

    def test_power_at_bank_below_input(self, budget):
        assert budget.power_at_bank_w(1e-3, 16) < 1e-3

    def test_snr_decreases_with_rows(self, budget):
        assert budget.snr_db(4, 16) > budget.snr_db(64, 16)

    def test_snr_improves_with_power(self, budget):
        assert budget.snr_db(16, 16, 10e-3) > budget.snr_db(16, 16, 1e-3)

    def test_square_scaling_is_shot_neutral(self, budget):
        """cols x (P/rows) constant for square banks: SNR flat."""
        assert budget.snr_db(8, 8) == pytest.approx(budget.snr_db(64, 64), abs=0.5)

    def test_achievable_bits_consistent_with_snr(self, budget):
        rep = budget.report(16, 16)
        assert rep.achievable_bits == int((rep.snr_db - 1.76) // 6.02)

    def test_max_rows_monotone_in_bits(self, budget):
        assert budget.max_rows(16, 4) >= budget.max_rows(16, 6)

    def test_max_rows_boundary_exact(self, budget):
        rows = budget.max_rows(16, 6)
        assert rows >= 1
        assert budget.achievable_bits(rows, 16) >= 6
        assert budget.achievable_bits(rows + 1, 16) < 6

    def test_required_power_achieves_bits(self, budget):
        p = budget.required_channel_power_w(16, 16, 8)
        assert budget.achievable_bits(16, 16, p) >= 8
        assert budget.achievable_bits(16, 16, p * 0.8) < 8

    def test_required_power_is_milliwatt_class_for_8bit(self, budget):
        p = budget.required_channel_power_w(16, 16, 8)
        assert 0.5e-3 < p < 20e-3

    def test_report_waterfall_includes_splitter(self, budget):
        rep = budget.report(16, 16)
        names = [n for n, _ in rep.waterfall_db]
        assert "1:16 splitter" in names
        assert rep.supports(rep.achievable_bits)

    def test_scaling_table_rows(self, budget):
        table = budget.scaling_table()
        assert [r["rows"] for r in table] == [1, 4, 8, 16, 32, 64, 128]
        snrs = [r["snr_db"] for r in table]
        assert all(a > b for a, b in zip(snrs, snrs[1:]))

    def test_validation(self, budget):
        with pytest.raises(ConfigError):
            budget.power_at_bank_w(-1.0, 16)
        with pytest.raises(ConfigError):
            budget.max_rows(16, 0)
        with pytest.raises(ConfigError):
            LinkBudget(modulator_transmission=0.0)


class TestRingDesign:
    @pytest.fixture(scope="class")
    def points(self):
        return design_space(
            couplings=(0.90, 0.95, 0.983),
            patch_lengths_m=(0.1e-6, 0.3e-6),
            n_channels=8,
        )

    def test_grid_size(self, points):
        assert len(points) == 6

    def test_high_q_improves_isolation(self):
        low = evaluate_design(0.90, 0.3e-6, n_channels=8)
        high = evaluate_design(0.983, 0.3e-6, n_channels=8)
        assert high.worst_leakage_db < low.worst_leakage_db
        assert high.q_factor > low.q_factor

    def test_high_q_long_patch_not_viable(self):
        point = evaluate_design(0.99, 0.5e-6, n_channels=8)
        assert not point.viable
        assert point.d_sym == 0.0

    def test_default_trident_point_viable(self):
        point = evaluate_design(0.95, 0.3e-6, n_channels=8)
        assert point.viable
        assert point.d_sym > 0.3

    def test_best_design_respects_leakage_bound(self, points):
        best = best_design(points, max_leakage_db=-8.0)
        assert best.viable
        assert best.worst_leakage_db <= -8.0 or best == min(
            [p for p in points if p.viable], key=lambda p: p.worst_leakage_db
        )

    def test_best_design_rejects_empty(self):
        with pytest.raises(ConfigError):
            best_design([])

    def test_evaluate_validation(self):
        with pytest.raises(ConfigError):
            evaluate_design(1.5, 0.3e-6)
        with pytest.raises(ConfigError):
            evaluate_design(0.95, -1.0)
