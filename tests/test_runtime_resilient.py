"""ResilientTrainer: cadenced checkpoints, rollback, backoff, resume."""

import numpy as np
import pytest

from repro import TridentAccelerator, TridentConfig
from repro.devices.program_verify import ProgramVerifyConfig
from repro.errors import CheckpointError, ConfigError
from repro.nn.datasets import Dataset, make_blobs, standardize
from repro.runtime import ResilienceConfig, ResilientTrainer
from repro.training.insitu import InSituTrainer

DIMS = (6, 8, 3)


def _trainer(seed=11, lr=0.05):
    acc = TridentAccelerator(
        config=TridentConfig(
            bank_rows=8, bank_cols=8, n_pes=4, spare_rows=2,
            convergence_floor=0.0,
        ),
        seed=seed,
        program_verify=ProgramVerifyConfig(),
    )
    acc.map_mlp(list(DIMS))
    rng = np.random.default_rng(3)
    acc.set_weights(
        [
            rng.normal(0.0, 0.4, (DIMS[i + 1], DIMS[i]))
            for i in range(len(DIMS) - 1)
        ]
    )
    return InSituTrainer(acc, lr=lr)


@pytest.fixture
def data():
    raw = make_blobs(n_samples=40, n_features=6, n_classes=3, seed=1)
    return Dataset(x=np.clip(standardize(raw.x) / 3, -1, 1), y=raw.y)


RCFG = ResilienceConfig(checkpoint_every=3, max_retries=2)


class TestHappyPath:
    def test_run_completes_and_checkpoints(self, data, tmp_path):
        rt = ResilientTrainer(_trainer(), tmp_path, config=RCFG)
        report = rt.run(data, steps=7, batch_size=8, seed=5)
        assert report.completed and report.aborted_reason is None
        assert report.steps_completed == 7
        assert len(report.losses) == 7
        assert all(np.isfinite(report.losses))
        # Anchor (step 0) + steps 3 and 6 + final step 7.
        assert report.checkpoints_written == 4
        assert rt.store.latest() is not None

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ResilienceConfig(checkpoint_every=0)
        with pytest.raises(ConfigError):
            ResilienceConfig(lr_backoff=0.0)
        with pytest.raises(ConfigError):
            ResilienceConfig(lr_backoff=1.5)
        with pytest.raises(ConfigError):
            ResilienceConfig(min_lr=0.0)
        with pytest.raises(ConfigError):
            ResilienceConfig(spike_factor=1.0)
        with pytest.raises(ConfigError):
            ResilienceConfig(max_retries=-1)


class TestCrashResume:
    def test_kill_and_resume_is_bit_identical(self, data, tmp_path):
        """A run halted mid-flight and resumed in a 'fresh process' must
        reproduce the uninterrupted run exactly: losses, realized weights,
        and event counters."""
        uninterrupted = ResilientTrainer(
            _trainer(), tmp_path / "a", config=RCFG
        )
        ref = uninterrupted.run(data, steps=10, batch_size=8, seed=5)

        first = ResilientTrainer(_trainer(), tmp_path / "b", config=RCFG)
        halted = first.run(
            data, steps=10, batch_size=8, seed=5, max_steps_this_run=5
        )
        assert not halted.completed
        # Fresh trainer objects simulate a new process after the crash.
        second = ResilientTrainer(
            _trainer(seed=404), tmp_path / "b", config=RCFG
        )
        resumed = second.run(data, steps=10, batch_size=8, seed=5, resume=True)

        assert resumed.completed
        assert resumed.resumed_from_step == 3
        assert resumed.losses == ref.losses
        for pe_a, pe_b in zip(
            uninterrupted.trainer.acc.pes, second.trainer.acc.pes
        ):
            assert np.array_equal(
                pe_a.bank.physical_levels, pe_b.bank.physical_levels
            )
        assert (
            uninterrupted.trainer.acc.counters.as_dict()
            == second.trainer.acc.counters.as_dict()
        )

    def test_resume_with_mismatched_run_rejected(self, data, tmp_path):
        rt = ResilientTrainer(_trainer(), tmp_path, config=RCFG)
        rt.run(data, steps=4, batch_size=8, seed=5)
        fresh = ResilientTrainer(_trainer(), tmp_path, config=RCFG)
        with pytest.raises(CheckpointError, match="does not match"):
            fresh.run(data, steps=4, batch_size=4, seed=5, resume=True)

    def test_resume_on_empty_store_starts_fresh(self, data, tmp_path):
        rt = ResilientTrainer(_trainer(), tmp_path, config=RCFG)
        report = rt.run(data, steps=4, batch_size=8, seed=5, resume=True)
        assert report.completed and report.resumed_from_step is None


class TestDivergence:
    def test_nan_loss_triggers_rollback_and_backoff(self, data, tmp_path):
        fired = {"done": False}

        def hook(step):
            if step == 4 and not fired["done"]:
                fired["done"] = True
                return float("nan")
            return None

        rt = ResilientTrainer(
            _trainer(lr=0.05), tmp_path, config=RCFG, step_hook=hook
        )
        report = rt.run(data, steps=8, batch_size=8, seed=5)
        assert report.completed
        assert report.rollbacks == 1
        incident = report.incidents[0]
        assert incident.step == 4
        assert incident.reason == "non-finite loss"
        assert incident.restored_step == 3
        assert incident.lr_after == pytest.approx(0.05 * RCFG.lr_backoff)
        assert len(report.losses) == 8
        assert all(np.isfinite(report.losses))

    def test_spike_triggers_rollback(self, data, tmp_path):
        fired = {"done": False}

        def hook(step):
            if step == 5 and not fired["done"]:
                fired["done"] = True
                return 1e6  # finite, but far above the running median
            return None

        rt = ResilientTrainer(
            _trainer(), tmp_path, config=RCFG, step_hook=hook
        )
        report = rt.run(data, steps=8, batch_size=8, seed=5)
        assert report.completed
        assert report.rollbacks == 1
        assert "spike" in report.incidents[0].reason

    def test_retry_budget_exhaustion_aborts_gracefully(self, data, tmp_path):
        def hook(step):
            return float("nan") if step == 2 else None

        rt = ResilientTrainer(
            _trainer(), tmp_path, config=RCFG, step_hook=hook
        )
        report = rt.run(data, steps=8, batch_size=8, seed=5)
        assert not report.completed
        assert "retries exhausted" in report.aborted_reason
        assert report.rollbacks == RCFG.max_retries + 1
        # Each retry halves the LR again from the checkpointed value.
        lrs = [i.lr_after for i in report.incidents[:-1]]
        assert lrs == sorted(lrs, reverse=True)
        # The store still holds a valid checkpoint for post-mortem.
        assert rt.store.latest() is not None

    def test_min_lr_floors_the_backoff(self, data, tmp_path):
        def hook(step):
            return float("nan") if step == 1 else None

        config = ResilienceConfig(
            checkpoint_every=3, max_retries=3, lr_backoff=0.01, min_lr=1e-3
        )
        rt = ResilientTrainer(
            _trainer(lr=0.05), tmp_path, config=config, step_hook=hook
        )
        report = rt.run(data, steps=4, batch_size=8, seed=5)
        assert all(i.lr_after >= 1e-3 for i in report.incidents)

    def test_report_render_and_as_dict(self, data, tmp_path):
        rt = ResilientTrainer(_trainer(), tmp_path, config=RCFG)
        report = rt.run(data, steps=4, batch_size=8, seed=5)
        text = report.render()
        assert "4/4 steps completed" in text
        doc = report.as_dict()
        assert doc["completed"] is True
        assert len(doc["losses"]) == 4


class TestBatchSchedule:
    def test_schedule_is_deterministic_and_covers_epoch(self, data):
        a = ResilientTrainer._batch_at(data, 8, seed=3, step=7)
        b = ResilientTrainer._batch_at(data, 8, seed=3, step=7)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
        per_epoch = -(-data.n_samples // 8)
        seen = np.concatenate(
            [
                ResilientTrainer._batch_at(data, 8, seed=3, step=s)[1]
                for s in range(per_epoch)
            ]
        )
        assert seen.shape[0] == data.n_samples  # every sample exactly once
