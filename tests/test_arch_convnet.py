"""Tests for the functional convolutional path."""

import numpy as np
import pytest

from repro.arch.config import TridentConfig
from repro.arch.convnet import FunctionalConvNet
from repro.devices.noise import NoiseModel
from repro.errors import MappingError, ShapeError
from repro.nn.datasets import make_shapes
from repro.nn.reference import conv2d_reference, gst_activation


@pytest.fixture
def small_net():
    return FunctionalConvNet(
        (8, 8, 1),
        [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",), ("dense", 3)],
    )


@pytest.fixture
def programmed(small_net, rng):
    wconv = rng.uniform(-1, 1, (4, 3, 3, 1))
    wdense = rng.uniform(-1, 1, (3, 64))
    small_net.set_weights([wconv, wdense])
    return small_net, wconv, wdense


def digital_forward(image, wconv, wdense):
    c = gst_activation(conv2d_reference(image, wconv, 1, 1))
    h, w, ch = c.shape
    p = c.reshape(h // 2, 2, w // 2, 2, ch).max(axis=(1, 3))
    return wdense @ p.ravel()


class TestSpecValidation:
    def test_empty_spec_rejected(self):
        with pytest.raises(MappingError):
            FunctionalConvNet((8, 8, 1), [])

    def test_dense_requires_flatten(self):
        with pytest.raises(MappingError):
            FunctionalConvNet((8, 8, 1), [("dense", 3)])

    def test_conv_after_flatten_rejected(self):
        with pytest.raises(MappingError):
            FunctionalConvNet((8, 8, 1), [("flatten",), ("conv", 4, 3, 1, 1)])

    def test_pool_divisibility_enforced(self):
        with pytest.raises(MappingError):
            FunctionalConvNet((8, 8, 1), [("pool", 3)])

    def test_unknown_layer_kind(self):
        with pytest.raises(MappingError):
            FunctionalConvNet((8, 8, 1), [("softmax",)])

    def test_output_shape_tracked(self, small_net):
        assert small_net.output_shape == (1, 1, 3)


class TestWeights:
    def test_weight_count_checked(self, small_net, rng):
        with pytest.raises(MappingError):
            small_net.set_weights([rng.uniform(-1, 1, (4, 3, 3, 1))])

    def test_conv_weight_shape_checked(self, small_net, rng):
        with pytest.raises(ShapeError):
            small_net.set_weights(
                [rng.uniform(-1, 1, (5, 3, 3, 1)), rng.uniform(-1, 1, (3, 64))]
            )

    def test_dense_weight_shape_checked(self, small_net, rng):
        with pytest.raises(ShapeError):
            small_net.set_weights(
                [rng.uniform(-1, 1, (4, 3, 3, 1)), rng.uniform(-1, 1, (4, 64))]
            )

    def test_pe_budget_enforced(self, rng):
        net = FunctionalConvNet(
            (8, 8, 1),
            [("conv", 4, 3, 1, 1), ("flatten",), ("dense", 3)],
            config=TridentConfig(n_pes=1),
        )
        with pytest.raises(MappingError):
            net.set_weights(
                [rng.uniform(-1, 1, (4, 3, 3, 1)), rng.uniform(-1, 1, (3, 256))]
            )


class TestForward:
    def test_matches_digital_reference(self, programmed, rng):
        net, wconv, wdense = programmed
        image = rng.uniform(0, 1, (8, 8, 1))
        got = net.forward(image)
        want = digital_forward(image, wconv, wdense)
        assert np.max(np.abs(got - want)) < 0.05

    def test_requires_programming(self, small_net):
        with pytest.raises(MappingError):
            small_net.forward(np.zeros((8, 8, 1)))

    def test_image_shape_checked(self, programmed):
        net, _, _ = programmed
        with pytest.raises(ShapeError):
            net.forward(np.zeros((9, 8, 1)))

    def test_forward_batch(self, programmed):
        net, _, _ = programmed
        x, _ = make_shapes(5, seed=0)
        out = net.forward_batch(x)
        assert out.shape == (5, 3)

    def test_forward_batch_rank_checked(self, programmed):
        net, _, _ = programmed
        with pytest.raises(ShapeError):
            net.forward_batch(np.zeros((8, 8, 1)))

    def test_symbols_counted(self, programmed):
        net, _, _ = programmed
        before = net.symbols
        net.forward(np.zeros((8, 8, 1)))
        # conv: 64 positions x 1 tile; dense: 1 position x 4 tiles.
        assert net.symbols - before == 64 + 4

    def test_noisy_forward_close(self, rng):
        net = FunctionalConvNet(
            (8, 8, 1),
            [("conv", 4, 3, 1, 1), ("pool", 2), ("flatten",), ("dense", 3)],
            noise=NoiseModel.realistic(seed=5),
        )
        wconv = rng.uniform(-1, 1, (4, 3, 3, 1))
        wdense = rng.uniform(-1, 1, (3, 64))
        net.set_weights([wconv, wdense])
        image = rng.uniform(0, 1, (8, 8, 1))
        got = net.forward(image)
        want = digital_forward(image, wconv, wdense)
        assert np.max(np.abs(got - want)) < 0.5


class TestMultiLayerConv:
    def test_two_conv_stages(self, rng):
        net = FunctionalConvNet(
            (8, 8, 1),
            [
                ("conv", 4, 3, 1, 1),
                ("pool", 2),
                ("conv", 6, 3, 1, 1),
                ("pool", 2),
                ("flatten",),
                ("dense", 3),
            ],
        )
        net.set_weights(
            [
                rng.uniform(-1, 1, (4, 3, 3, 1)),
                rng.uniform(-1, 1, (6, 3, 3, 4)),
                rng.uniform(-1, 1, (3, 24)),
            ]
        )
        out = net.forward(rng.uniform(0, 1, (8, 8, 1)))
        assert out.shape == (3,)
        assert np.all(np.isfinite(out))

    def test_stats_merged(self, programmed):
        net, _, _ = programmed
        net.forward(np.zeros((8, 8, 1)))
        stats = net.bank_stats()
        assert stats.write_events == 5  # 1 conv tile + 4 dense tiles
        assert stats.symbols == net.symbols


class TestShapesDataset:
    def test_shapes_and_ranges(self):
        x, y = make_shapes(30, size=8, seed=1)
        assert x.shape == (30, 8, 8, 1)
        assert np.all(x >= 0) and np.all(x <= 1)
        assert set(np.unique(y)) <= {0, 1, 2}

    def test_deterministic(self):
        a = make_shapes(10, seed=3)
        b = make_shapes(10, seed=3)
        assert np.array_equal(a[0], b[0])

    def test_classes_distinguishable(self):
        """Row/column variance separates stripes from checkerboards."""
        x, y = make_shapes(120, noise=0.05, seed=2)
        col_var = x[..., 0].mean(axis=1).var(axis=1)  # variance across columns
        row_var = x[..., 0].mean(axis=2).var(axis=1)
        vertical = col_var > row_var + 0.01
        horizontal = row_var > col_var + 0.01
        assert np.mean(vertical[y == 0]) > 0.9
        assert np.mean(horizontal[y == 1]) > 0.9

    def test_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            make_shapes(2)
        with pytest.raises(ConfigError):
            make_shapes(10, size=2)
