"""ABFT integrity: checksum attachment, noise-calibrated attestation,
the SDC escalation ladder, sharded attestation, and repair scrubbing."""

import numpy as np
import pytest

from repro.arch import TridentAccelerator, TridentConfig
from repro.chaos import ChaosPlan, Injection
from repro.chaos.session import session as chaos_scope
from repro.devices.program_verify import ProgramVerifyConfig
from repro.errors import IntegrityError, IntegrityFault
from repro.integrity import (
    ChecksumUnit,
    IntegrityConfig,
    IntegrityCounters,
    attest_batch,
    build_integrity_worker,
)
from repro.serving import build_sharded_worker
from repro.sharding import plan_pipeline

DIMS = (12, 16, 4)
SEED = 7
BATCH = 16


def _batch(seed=SEED, n=BATCH, width=DIMS[0]):
    return np.random.default_rng(seed + 50).uniform(-1.0, 1.0, (n, width))


def _small_acc(dims=(8, 8), n_pes=2, seed=0, with_weights=True):
    rows = max(dims)
    config = TridentConfig(
        n_pes=n_pes, bank_rows=rows, bank_cols=rows, convergence_floor=0.0
    )
    acc = TridentAccelerator(config=config, seed=seed)
    acc.map_mlp(list(dims))
    if with_weights:
        rng = np.random.default_rng(seed + 1)
        acc.set_weights(
            [
                rng.normal(0.0, 0.4, (dims[i + 1], dims[i]))
                for i in range(len(dims) - 1)
            ]
        )
    return acc


def _upset_data_tiles(worker, seed=SEED, cells=48, delta=0.6):
    """Silently drift realized levels on every data tile (health stays
    green; only the checksum can see it)."""
    rng = np.random.default_rng((0xABF7, seed))
    acc = worker.acc
    for layer in acc.layers:
        for tile in layer.tiles:
            acc.pes[tile[4]].bank.upset_cells(cells, rng, delta=delta)


# ---------------------------------------------------------------------------
# Config / attachment
# ---------------------------------------------------------------------------
class TestIntegrityConfig:
    def test_margin_must_cover_worst_case(self):
        with pytest.raises(IntegrityError, match="margin"):
            IntegrityConfig(margin=0.5)

    def test_quant_margin_must_be_positive(self):
        with pytest.raises(IntegrityError, match="quantization"):
            IntegrityConfig(quant_margin_levels=0.0)

    def test_calibration_needs_samples(self):
        with pytest.raises(IntegrityError, match="calibration"):
            IntegrityConfig(calibration_batches=0)
        with pytest.raises(IntegrityError, match="scale"):
            IntegrityConfig(calibration_input_scale=0.0)


class TestChecksumAttachment:
    def test_attach_requires_mapped_network(self):
        acc = TridentAccelerator(config=TridentConfig(n_pes=2))
        with pytest.raises(IntegrityError, match="map and program"):
            ChecksumUnit(acc)

    def test_attach_requires_programmed_weights(self):
        acc = _small_acc(with_weights=False)
        with pytest.raises(IntegrityError, match="weights"):
            ChecksumUnit(acc)

    def test_attach_respects_pe_budget(self):
        # One data tile fills the only PE; the checksum row has nowhere
        # to live and must say so rather than stealing a data tile.
        acc = _small_acc(n_pes=1)
        with pytest.raises(IntegrityError, match="enlarge n_pes"):
            ChecksumUnit(acc)

    def test_checksum_rows_stay_out_of_data_tiles(self):
        acc = _small_acc(n_pes=2)
        before = [list(layer.tiles) for layer in acc.layers]
        unit = ChecksumUnit(acc)
        assert len(acc.pes) == 2  # data tile + checksum tile
        assert [list(layer.tiles) for layer in acc.layers] == before
        assert unit.tiles[0][0][2] == 1  # allocated beyond the mapping

    def test_verify_requires_calibration(self):
        unit = ChecksumUnit(_small_acc())
        with pytest.raises(IntegrityError, match="calibrate"):
            unit.violations()

    def test_residuals_require_recorded_batch(self):
        unit = ChecksumUnit(_small_acc())
        with pytest.raises(IntegrityError, match="record"):
            unit.analog_residuals()

    def test_counters_conservation_predicate(self):
        counters = IntegrityCounters(checks=5, tripped=2, reexec_recovered=1)
        assert not counters.conserved()
        counters.escalated = 1
        assert counters.conserved()


# ---------------------------------------------------------------------------
# Clean attestation: no false trips, no perturbation
# ---------------------------------------------------------------------------
class TestCleanAttestation:
    @pytest.mark.parametrize("seed", [3, 7, 11])
    def test_clean_batches_never_trip(self, seed):
        worker = build_integrity_worker(0, DIMS, seed)
        for i in range(3):
            outputs = worker.execute(_batch(seed + i))
            assert np.all(np.isfinite(outputs))
        assert worker.integrity.counters.checks == 3
        assert worker.integrity.counters.tripped == 0
        assert worker.integrity.counters.conserved()

    def test_attestation_never_perturbs_outputs(self):
        checked = build_integrity_worker(0, DIMS, SEED, with_integrity=True)
        plain = build_integrity_worker(0, DIMS, SEED, with_integrity=False)
        xs = _batch()
        a = checked.execute(xs)
        b = plain.execute(xs)
        assert a.tobytes() == b.tobytes()

    def test_checked_runs_replay_bit_identically(self):
        xs = _batch()
        a = build_integrity_worker(0, DIMS, SEED).execute(xs)
        b = build_integrity_worker(0, DIMS, SEED).execute(xs)
        assert a.tobytes() == b.tobytes()


# ---------------------------------------------------------------------------
# The escalation ladder, rung by rung
# ---------------------------------------------------------------------------
class TestEscalationLadder:
    def _one_shot_plan(self, mode, magnitude=4.0):
        return ChaosPlan(
            seed=3,
            injections=(
                Injection(
                    t_s=0.0,
                    kind="silent_corrupt",
                    target=0,
                    params={"mode": mode, "magnitude": magnitude},
                ),
            ),
        )

    @pytest.mark.parametrize(
        "mode,magnitude", [("bias", 4.0), ("scale", 100.0)]
    )
    def test_transient_corruption_recovers_by_reexecution(
        self, mode, magnitude
    ):
        worker = build_integrity_worker(0, DIMS, SEED)
        clean = build_integrity_worker(0, DIMS, SEED, with_integrity=False)
        xs = _batch()
        with chaos_scope(self._one_shot_plan(mode, magnitude)) as session:
            outputs = worker.execute(xs)
        counters = worker.integrity.counters
        assert session.applied_counts() == {"silent_corrupt": 1}
        assert counters.tripped == 1
        assert counters.reexec_recovered == 1
        assert counters.escalated == 0
        assert counters.conserved()
        # The re-executed batch is the clean result, not the poison.
        assert outputs.tobytes() == clean.execute(xs).tobytes()
        actions = [i["action"] for i in worker.integrity.incidents]
        assert actions == ["reexec_recovered"]

    def test_faulty_checksum_row_is_exonerated_by_digital_spare(self):
        worker = build_integrity_worker(0, DIMS, SEED)
        unit = worker.integrity.unit
        rng = np.random.default_rng(5)
        for tiles in unit.tiles:
            for _, _, pe_index in tiles:
                worker.acc.pes[pe_index].bank.upset_cells(64, rng, delta=1.0)
        outputs = worker.execute(_batch())
        counters = worker.integrity.counters
        assert np.all(np.isfinite(outputs))
        assert counters.tripped == 1
        assert counters.spare_confirmed == 1
        assert counters.escalated == 0
        assert counters.conserved()

    def test_persistent_data_corruption_escalates(self):
        worker = build_integrity_worker(0, DIMS, SEED)
        _upset_data_tiles(worker)
        with pytest.raises(IntegrityFault):
            worker.execute(_batch())
        counters = worker.integrity.counters
        assert counters.escalated == 1
        assert counters.conserved()
        assert worker.batches_failed == 1
        # The escalation is charged to the worker's repair history.
        assert worker.manager.log.sdc_escalations == 1

    def test_repair_scrubs_and_recalibrates_after_escalation(self):
        worker = build_integrity_worker(0, DIMS, SEED)
        _upset_data_tiles(worker)
        with pytest.raises(IntegrityFault):
            worker.execute(_batch())
        assert worker.repair()
        outputs = worker.execute(_batch(SEED + 1))
        counters = worker.integrity.counters
        assert np.all(np.isfinite(outputs))
        assert counters.escalated == 1  # no new escalation post-scrub
        assert counters.tripped == 1
        assert counters.conserved()

    def test_attest_batch_charges_every_manager(self):
        class _Spy:
            calls = 0

            def note_sdc(self):
                self.calls += 1

        worker = build_integrity_worker(0, DIMS, SEED)
        _upset_data_tiles(worker)
        xs = _batch()
        outputs = worker.acc.forward_batch(xs, record=True)
        spy = _Spy()
        with pytest.raises(IntegrityFault):
            attest_batch(
                worker.integrity,
                xs,
                outputs,
                worker_id=0,
                now_s=0.0,
                manager=[spy, None],
            )
        assert spy.calls == 1


# ---------------------------------------------------------------------------
# Sharded pipelines attest the same ladder
# ---------------------------------------------------------------------------
SHARD = TridentConfig(n_pes=8, bank_rows=8, bank_cols=8)
DETERMINISTIC_PV = ProgramVerifyConfig(write_std_levels=0.0, read_std_levels=0.0)
SHARD_DIMS = [8, 32, 32, 8]


def _sharded(with_integrity=True, with_managers=True, seed=3):
    rng = np.random.default_rng(seed)
    weights = [
        rng.normal(0.0, 0.6, (SHARD_DIMS[i + 1], SHARD_DIMS[i]))
        for i in range(len(SHARD_DIMS) - 1)
    ]
    return build_sharded_worker(
        0,
        plan_pipeline(SHARD_DIMS, SHARD),
        weights,
        config=SHARD,
        seed=seed,
        program_verify=DETERMINISTIC_PV,
        with_managers=with_managers,
        spare_pes=8,
        with_integrity=with_integrity,
    )


class TestShardedIntegrity:
    def test_clean_sharded_batch_attests_without_tripping(self):
        worker = _sharded()
        outputs = worker.execute(_batch(width=SHARD_DIMS[0]))
        counters = worker.integrity.counters
        assert np.all(np.isfinite(outputs))
        assert counters.checks == 1
        assert counters.tripped == 0

    def test_sharded_attestation_parity_with_unchecked(self):
        xs = _batch(width=SHARD_DIMS[0])
        a = _sharded(with_integrity=True).execute(xs)
        b = _sharded(with_integrity=False).execute(xs)
        assert a.tobytes() == b.tobytes()

    def test_sharded_escalation_and_scrub(self):
        worker = _sharded()
        rng = np.random.default_rng((0xABF7, 3))
        for runtime in worker.stages:
            for acc in runtime.stage.parts:
                for layer in acc.layers:
                    for tile in layer.tiles:
                        acc.pes[tile[4]].bank.upset_cells(48, rng, delta=0.6)
        with pytest.raises(IntegrityFault):
            worker.execute(_batch(width=SHARD_DIMS[0]))
        counters = worker.integrity.counters
        assert counters.escalated == 1
        assert counters.conserved()
        assert worker.repair()
        outputs = worker.execute(_batch(SEED + 2, width=SHARD_DIMS[0]))
        assert np.all(np.isfinite(outputs))
        assert counters.escalated == 1  # clean after the scrub
