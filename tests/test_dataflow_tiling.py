"""Tests for the weight-stationary tile scheduler."""

import pytest

from repro.dataflow.tiling import TileSchedule
from repro.errors import ScheduleError
from repro.nn.layers import GEMMShape


def sched(m, k, n, groups=1, rows=16, cols=16):
    return TileSchedule(GEMMShape(m=m, k=k, n=n, groups=groups), rows, cols)


class TestTileCounts:
    def test_exact_fit(self):
        s = sched(16, 16, 100)
        assert s.tiles_m == 1
        assert s.tiles_k == 1
        assert s.n_tiles == 1

    def test_ceiling_division(self):
        s = sched(17, 33, 10)
        assert s.tiles_m == 2
        assert s.tiles_k == 3
        assert s.n_tiles == 6

    def test_groups_multiply(self):
        s = sched(1, 9, 100, groups=32)
        assert s.tiles_per_group == 1
        assert s.n_tiles == 32

    def test_vgg_conv3_3(self):
        # M=256, K=2304 -> 16 x 144 = 2304 tiles.
        s = sched(256, 2304, 3136)
        assert s.n_tiles == 2304

    def test_rejects_bad_bank(self):
        with pytest.raises(ScheduleError):
            TileSchedule(GEMMShape(m=4, k=4, n=4), 0, 16)


class TestAccounting:
    def test_cells_equal_weight_elements(self):
        s = sched(17, 33, 10, groups=2)
        assert s.cells == 17 * 33 * 2

    def test_symbols(self):
        s = sched(16, 16, 100)
        assert s.symbols == 100
        s2 = sched(32, 32, 100)
        assert s2.symbols == 4 * 100

    def test_output_elements(self):
        s = sched(17, 33, 10, groups=3)
        assert s.output_elements == 17 * 10 * 3

    def test_partial_sums_zero_when_reduction_fits(self):
        assert sched(32, 16, 10).partial_sum_elements == 0

    def test_partial_sums_scale_with_extra_k_tiles(self):
        s = sched(16, 48, 10)
        assert s.tiles_k == 3
        assert s.partial_sum_elements == 16 * 10 * 2

    def test_mean_occupancy_full(self):
        assert sched(32, 32, 5).mean_occupancy == 1.0

    def test_mean_occupancy_edge_tiles(self):
        s = sched(8, 8, 5)  # quarter of one bank
        assert s.mean_occupancy == pytest.approx(0.25)

    def test_depthwise_occupancy_terrible(self):
        # The mechanism behind MobileNetV2's poor photonic efficiency.
        s = sched(1, 9, 100, groups=64)
        assert s.mean_occupancy == pytest.approx(9 / 256)


class TestRounds:
    def test_rounds_ceiling(self):
        s = sched(256, 2304, 3136)  # 2304 tiles
        assert s.rounds(44) == 53
        assert s.rounds(2304) == 1
        assert s.rounds(1) == 2304

    def test_rejects_bad_pe_count(self):
        with pytest.raises(ScheduleError):
            sched(4, 4, 4).rounds(0)

    def test_positions(self):
        assert sched(4, 4, 784).positions == 784
