"""Property-based tests (hypothesis) on fleet control-plane invariants.

Per ISSUE acceptance criteria:

- **Worker conservation** — across arbitrary mid-run scale-up / drain
  schedules, every submitted request settles exactly once (completed
  xor shed; never lost, never double-settled), and every worker that
  leaves the roster checkpointed its bank state first.
- **Controller idempotence** — a controller watching a steady, green
  fleet (all SLOs met, utilization in the dead zone, fleet at its
  floor) performs zero actuations besides its final run-drained stop.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (
    LADDER,
    WorkerPool,
    run_fleet_workload,
    smoke_scenario,
)
from repro.serving import InferenceRequest, ServerConfig, TridentServer

DIMS = (6, 4)

request_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5e-6),        # inter-arrival gap
        st.integers(min_value=0, max_value=2),           # priority
        st.one_of(st.none(), st.floats(1e-6, 2e-5)),     # deadline slack
    ),
    min_size=4,
    max_size=30,
)

#: Mid-run lifecycle operations: (when, what) with `when` a fraction of
#: the arrival horizon.
lifecycle_ops = st.lists(
    st.tuples(
        st.floats(min_value=0.05, max_value=0.95),
        st.sampled_from(["commission", "drain"]),
    ),
    max_size=6,
)


def build_arrivals(specs):
    arrivals, t = [], 0.0
    rng = np.random.default_rng(0)
    for rid, (gap, priority, slack) in enumerate(specs):
        t += gap
        arrivals.append(
            InferenceRequest(
                request_id=rid,
                x=rng.uniform(-1, 1, DIMS[0]),
                arrival_s=t,
                deadline_s=None if slack is None else t + slack,
                priority=priority,
            )
        )
    return arrivals


def run_with_lifecycle(specs, ops, seed):
    """One serve run with hypothesis-chosen commissions/drains mid-flight."""
    pool = WorkerPool(DIMS, seed=7)
    workers = pool.bootstrap(2)
    server = TridentServer(
        workers,
        config=ServerConfig(
            max_queue_depth=8, max_batch=4, slo_latency_s=1e-5, seed=seed
        ),
    )
    pool.bind(server)
    arrivals = build_arrivals(specs)
    horizon = arrivals[-1].arrival_s

    def commission(s):
        pool.refresh(s.clock.now())
        if len(pool.states) - len(pool.ids_in("decommissioned")) < 8:
            pool.commission(warmup_s=1e-6)

    def drain(s):
        now = s.clock.now()
        pool.refresh(now)
        active = pool.ids_in("active")
        if len(active) > 1:
            pool.begin_drain(max(active))
        for wid in pool.ids_in("draining"):
            pool.try_decommission(wid)

    for index, (frac, op) in enumerate(ops):
        server.schedule_action(
            frac * horizon,
            f"lifecycle_{index}",
            commission if op == "commission" else drain,
        )
    report = server.run(arrivals)
    # Settle whatever the schedule left mid-lifecycle.
    pool.refresh(server.clock.now())
    for wid in pool.ids_in("draining"):
        if len(server.workers) > 1:
            pool.try_decommission(wid)
    return report, pool, server


class TestWorkerConservation:
    @settings(max_examples=15, deadline=None)
    @given(specs=request_specs, ops=lifecycle_ops, seed=st.integers(0, 2**16))
    def test_no_request_lost_across_scale_cycles(self, specs, ops, seed):
        report, _pool, _server = run_with_lifecycle(specs, ops, seed)
        assert report.conservation_ok()
        completed = [c.request.request_id for c in report.completed]
        shed = [r.request.request_id for r in report.shed]
        # Exactly-once settlement: no loss, no double-settle.
        assert len(completed) == len(set(completed))
        assert len(shed) == len(set(shed))
        assert set(completed) | set(shed) == {
            r.request_id for r in build_arrivals(specs)
        }
        assert not set(completed) & set(shed)

    @settings(max_examples=15, deadline=None)
    @given(specs=request_specs, ops=lifecycle_ops, seed=st.integers(0, 2**16))
    def test_every_retired_worker_checkpointed(self, specs, ops, seed):
        _report, pool, server = run_with_lifecycle(specs, ops, seed)
        for wid in pool.ids_in("decommissioned"):
            assert wid in pool.checkpoint_digests
            assert len(pool.checkpoint_digests[wid]) == 64
            # Retired workers are off the server roster for good.
            assert all(w.worker_id != wid for w in server.workers)


class TestControllerIdempotence:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        base_rate_x=st.floats(min_value=0.1, max_value=0.4),
        amplitude=st.floats(min_value=0.0, max_value=0.3),
    )
    def test_green_steady_state_means_zero_actuations(
        self, seed, base_rate_x, amplitude
    ):
        import dataclasses

        base = smoke_scenario(seed=seed)
        trace = dataclasses.replace(
            base.trace,
            duration_s=1.5e-4,
            base_rate_x=base_rate_x,
            diurnal_amplitude=amplitude,
            bursts=(),
        )
        # Grade against an SLO with headroom over the micro-batch hold
        # time: at sparse load the batcher's hold delay dominates latency,
        # and an unattainable SLO is *correctly* red, not steady-green.
        controller = dataclasses.replace(base.controller, slo_latency_s=3e-5)
        scenario = dataclasses.replace(
            base, trace=trace, controller=controller
        )
        result = run_fleet_workload(scenario, controlled=True)
        controller = result.controller
        # Fleet sits at its floor, SLOs green: the only actuation the
        # whole run is the final run-drained stop.
        assert controller.stopped
        assert [a["action"] for a in controller.actuations] == ["stop"]
        assert controller.scale_up_events == 0
        assert controller.scale_down_events == 0
        assert LADDER[controller.rung] == "nominal"
        assert result.pool.counts()["active"] == scenario.initial_workers
        assert result.report.conservation_ok()
