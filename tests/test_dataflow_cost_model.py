"""Tests for the photonic cost model and report records."""

import pytest

from repro.arch.config import TridentConfig
from repro.dataflow.cost_model import PhotonicArch, PhotonicCostModel
from repro.dataflow.report import LayerCost
from repro.dataflow.tiling import TileSchedule
from repro.errors import ConfigError, ScheduleError
from repro.nn import build_model
from repro.nn.graph import Network
from repro.nn.layers import Dense, GEMMShape, TensorShape


@pytest.fixture(scope="module")
def trident():
    return PhotonicArch.trident()


@pytest.fixture(scope="module")
def resnet_cost(trident):
    return PhotonicCostModel(trident, batch=128).model_cost(build_model("resnet50"))


class TestPhotonicArch:
    def test_trident_from_config(self, trident):
        cfg = TridentConfig()
        assert trident.n_pes == 44
        assert trident.symbol_rate_hz == cfg.symbol_rate_hz
        assert trident.write_energy_per_cell_j == pytest.approx(660e-12)
        assert trident.streaming_power_pe_w == pytest.approx(cfg.pe_streaming_power_w)

    def test_symbol_energy(self, trident):
        expected = trident.streaming_power_pe_w / trident.symbol_rate_hz
        assert trident.symbol_energy_j == pytest.approx(expected)

    def test_peak_tops(self, trident):
        assert trident.peak_tops == pytest.approx(7.8, rel=0.01)

    def test_scaled_to_budget(self, trident):
        half = trident.scaled_to_budget(15.0)
        assert half.n_pes == 22

    def test_scaled_rejects_tiny_budget(self, trident):
        with pytest.raises(ConfigError):
            trident.scaled_to_budget(0.1)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PhotonicArch(name="x", n_pes=0, symbol_rate_hz=1e8,
                         write_energy_per_cell_j=1e-12, write_time_s=1e-7,
                         streaming_power_pe_w=0.1, sizing_power_pe_w=0.5)
        with pytest.raises(ConfigError):
            PhotonicArch(name="x", n_pes=4, symbol_rate_hz=1e8,
                         write_energy_per_cell_j=-1e-12, write_time_s=1e-7,
                         streaming_power_pe_w=0.1, sizing_power_pe_w=0.5)


class TestLayerCost:
    def test_single_tile_layer(self, trident):
        cm = PhotonicCostModel(trident, batch=1)
        schedule = TileSchedule(GEMMShape(m=16, k=16, n=100), 16, 16)
        cost = cm.layer_cost("l", schedule, TensorShape(10, 10, 16), True)
        # One round: write + 100 symbols.
        expected_time = trident.write_time_s + 100 / trident.symbol_rate_hz
        assert cost.time_s == pytest.approx(expected_time)
        assert cost.energy_breakdown["tuning"] == pytest.approx(256 * 660e-12)
        assert cost.energy_breakdown["streaming"] == pytest.approx(
            100 * trident.symbol_energy_j
        )
        assert cost.energy_breakdown["conversion"] == 0.0

    def test_batch_amortizes_tuning(self, trident):
        schedule = TileSchedule(GEMMShape(m=16, k=16, n=100), 16, 16)
        shape = TensorShape(10, 10, 16)
        e1 = PhotonicCostModel(trident, batch=1).layer_cost("l", schedule, shape, True)
        e64 = PhotonicCostModel(trident, batch=64).layer_cost("l", schedule, shape, True)
        assert e64.energy_breakdown["tuning"] == pytest.approx(
            e1.energy_breakdown["tuning"] / 64
        )
        # Streaming per inference is batch-independent.
        assert e64.energy_breakdown["streaming"] == pytest.approx(
            e1.energy_breakdown["streaming"]
        )
        assert e64.time_s < e1.time_s

    def test_hold_power_charged_when_enabled(self):
        arch = PhotonicArch(
            name="thermal", n_pes=40, symbol_rate_hz=1e8,
            write_energy_per_cell_j=1e-9, write_time_s=6e-7,
            streaming_power_pe_w=0.1, sizing_power_pe_w=0.6,
            hold_power_per_cell_w=1.7e-3,
        )
        schedule = TileSchedule(GEMMShape(m=16, k=16, n=100), 16, 16)
        shape = TensorShape(10, 10, 16)
        off = PhotonicCostModel(arch, batch=1).layer_cost("l", schedule, shape, True)
        on = PhotonicCostModel(arch, batch=1, charge_hold_power=True).layer_cost(
            "l", schedule, shape, True
        )
        assert off.energy_breakdown["hold"] == 0.0
        expected_hold = 1.7e-3 * 256 * 100 / 1e8
        assert on.energy_breakdown["hold"] == pytest.approx(expected_hold)

    def test_digital_activation_pays_conversion_and_memory(self, trident):
        from dataclasses import replace

        digital = replace(
            trident, name="digital", digital_activation=True,
            adc_energy_per_sample_j=10e-12, dac_energy_per_sample_j=5e-12,
        )
        schedule = TileSchedule(GEMMShape(m=16, k=16, n=100), 16, 16)
        shape = TensorShape(10, 10, 16)
        photonic = PhotonicCostModel(trident, batch=1).layer_cost("l", schedule, shape, True)
        adc = PhotonicCostModel(digital, batch=1).layer_cost("l", schedule, shape, True)
        assert adc.energy_breakdown["conversion"] == pytest.approx(
            1600 * 10e-12 + 1600 * 5e-12
        )
        assert adc.energy_breakdown["memory"] > photonic.energy_breakdown["memory"]

    def test_rejects_bad_batch(self, trident):
        with pytest.raises(ConfigError):
            PhotonicCostModel(trident, batch=0)


class TestModelCost:
    def test_covers_all_compute_layers(self, resnet_cost):
        assert len(resnet_cost.layers) == 54

    def test_energy_is_sum_of_layers(self, resnet_cost):
        assert resnet_cost.energy_j == pytest.approx(
            sum(l.energy_j for l in resnet_cost.layers)
        )

    def test_effective_tops_below_peak(self, resnet_cost, trident):
        assert 0 < resnet_cost.effective_tops <= trident.peak_tops

    def test_resnet_effective_tops_near_peak(self, resnet_cost):
        # Dense convs keep banks nearly full: > 90 % of peak.
        assert resnet_cost.effective_tops > 7.0

    def test_energy_component_accessor(self, resnet_cost):
        total = sum(
            resnet_cost.energy_component(k)
            for k in ("tuning", "streaming", "hold", "conversion", "memory")
        )
        assert total == pytest.approx(resnet_cost.energy_j)

    def test_average_power_below_budget(self, resnet_cost):
        # Steady-state power must stay within the 30 W envelope.
        assert resnet_cost.average_power_w < 30.0

    def test_inferences_per_second(self, resnet_cost):
        assert resnet_cost.inferences_per_second == pytest.approx(1 / resnet_cost.time_s)

    def test_network_without_compute_rejected(self, trident):
        net = Network("empty", TensorShape(8, 8, 3))
        from repro.nn.layers import Pool

        net.add(Pool("p", kernel=2))
        with pytest.raises(ScheduleError):
            PhotonicCostModel(trident).model_cost(net)

    def test_more_pes_reduce_latency(self):
        net = build_model("resnet50")
        small = PhotonicArch.trident(TridentConfig(n_pes=11))
        big = PhotonicArch.trident(TridentConfig(n_pes=44))
        t_small = PhotonicCostModel(small, batch=128).model_cost(net).time_s
        t_big = PhotonicCostModel(big, batch=128).model_cost(net).time_s
        assert t_big < t_small

    def test_report_validation(self):
        with pytest.raises(ScheduleError):
            LayerCost(name="l", macs=1, time_s=-1.0, energy_j=0.0)


class TestMonotonicity:
    def test_energy_monotone_in_write_energy(self):
        from dataclasses import replace

        net = build_model("alexnet")
        base = PhotonicArch.trident()
        cheap = PhotonicCostModel(base, batch=8).model_cost(net).energy_j
        expensive_arch = replace(base, write_energy_per_cell_j=2e-9)
        expensive = PhotonicCostModel(expensive_arch, batch=8).model_cost(net).energy_j
        assert expensive > cheap

    def test_latency_monotone_in_symbol_rate(self):
        from dataclasses import replace

        net = build_model("alexnet")
        base = PhotonicArch.trident()
        fast = PhotonicCostModel(base, batch=8).model_cost(net).time_s
        slow_arch = replace(base, symbol_rate_hz=base.symbol_rate_hz / 2)
        slow = PhotonicCostModel(slow_arch, batch=8).model_cost(net).time_s
        assert slow > fast
