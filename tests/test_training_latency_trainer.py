"""Tests for the training-latency model (Table V) and the epoch loop."""

import pytest

from repro.baselines.electronic import agx_xavier_training
from repro.errors import ConfigError, ScheduleError
from repro.nn import build_model
from repro.nn.datasets import make_blobs
from repro.nn.graph import Network
from repro.nn.layers import Pool, TensorShape
from repro.nn.reference import DigitalMLP
from repro.training.latency import TrainingCostModel
from repro.training.trainer import TrainingHistory, train_classifier


@pytest.fixture(scope="module")
def tcm():
    return TrainingCostModel(batch=32)


class TestStepCosts:
    def test_all_passes_positive(self, tcm):
        costs = tcm.step_costs(build_model("googlenet"))
        assert costs.forward_time_s > 0
        assert costs.gradient_time_s > 0
        assert costs.outer_time_s > 0
        assert costs.update_time_s > 0
        assert costs.energy_j > 0

    def test_training_step_slower_than_inference(self, tcm):
        costs = tcm.step_costs(build_model("resnet50"))
        assert costs.expansion_over_inference > 2.0

    def test_outer_pass_dominates_depthwise_models(self, tcm):
        """The honest finding of this reproduction: depthwise weight
        gradients are retune-bound (see EXPERIMENTS.md)."""
        costs = tcm.step_costs(build_model("mobilenet_v2"))
        assert costs.outer_time_s > costs.forward_time_s

    def test_time_is_sum_of_passes(self, tcm):
        c = tcm.step_costs(build_model("alexnet"))
        assert c.time_s == pytest.approx(
            c.forward_time_s + c.gradient_time_s + c.outer_time_s + c.update_time_s
        )

    def test_rejects_no_compute(self, tcm):
        net = Network("empty", TensorShape(8, 8, 3))
        net.add(Pool("p", kernel=2))
        with pytest.raises(ScheduleError):
            tcm.step_costs(net)

    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigError):
            TrainingCostModel(batch=0)


class TestTrainingTimes:
    def test_scales_linearly_with_samples(self, tcm):
        net = build_model("googlenet")
        t1 = tcm.training_time_s(net, 1000)
        t2 = tcm.training_time_s(net, 2000)
        assert t2 == pytest.approx(2 * t1)

    def test_rejects_bad_sample_count(self, tcm):
        with pytest.raises(ConfigError):
            tcm.training_time_s(build_model("googlenet"), 0)
        with pytest.raises(ConfigError):
            tcm.training_energy_j(build_model("googlenet"), -1)

    def test_table5_vgg_sign(self, tcm):
        """Trident trains VGG-16 substantially faster than Xavier (paper:
        -38.5 %); large reused tiles amortize retuning."""
        net = build_model("vgg16")
        trident = tcm.training_time_s(net)
        xavier = agx_xavier_training("vgg16").training_time_s(net, 50_000, batch=32)
        assert trident < xavier

    def test_table5_resnet_sign(self, tcm):
        net = build_model("resnet50")
        trident = tcm.training_time_s(net)
        xavier = agx_xavier_training("resnet50").training_time_s(net, 50_000, batch=32)
        assert trident < xavier

    def test_table5_googlenet_sign_flip(self, tcm):
        """Paper Table V's one reversal: GoogleNet trains *slower* on
        Trident (+10.6 %) — many small layers make retuning dominate."""
        net = build_model("googlenet")
        trident = tcm.training_time_s(net)
        xavier = agx_xavier_training("googlenet").training_time_s(net, 50_000, batch=32)
        assert trident > xavier

    def test_googlenet_magnitude_close_to_paper(self, tcm):
        trident = tcm.training_time_s(build_model("googlenet"))
        assert trident == pytest.approx(63.2, rel=0.25)

    def test_vgg_magnitude_close_to_paper(self, tcm):
        trident = tcm.training_time_s(build_model("vgg16"))
        assert trident == pytest.approx(796.1, rel=0.25)

    def test_training_energy_positive(self, tcm):
        assert tcm.training_energy_j(build_model("googlenet"), 100) > 0

    def test_larger_batch_amortizes_retuning(self):
        net = build_model("googlenet")
        t8 = TrainingCostModel(batch=8).step_costs(net).time_s
        t64 = TrainingCostModel(batch=64).step_costs(net).time_s
        assert t64 < t8


class TestTrainClassifier:
    def test_history_records_epochs(self):
        data = make_blobs(n_samples=120, n_features=4, n_classes=2, seed=0)
        train, test = data.split(0.8, seed=0)
        mlp = DigitalMLP([4, 8, 2], seed=1)

        class Wrap:
            def train_step(self, x, y):
                return mlp.train_step(x, y, lr=0.3)

            def accuracy(self, x, y):
                return mlp.accuracy(x, y)

        hist = train_classifier(Wrap(), train, test, epochs=4, batch_size=16)
        assert hist.epochs == 4
        assert len(hist.train_accuracies) == 4
        assert hist.final_test_accuracy == hist.test_accuracies[-1]

    def test_empty_history_rejects_final_accuracy(self):
        with pytest.raises(ConfigError):
            TrainingHistory().final_test_accuracy

    def test_rejects_zero_epochs(self):
        data = make_blobs(n_samples=40, seed=0)
        train, test = data.split(0.5, seed=0)
        with pytest.raises(ConfigError):
            train_classifier(None, train, test, epochs=0)
