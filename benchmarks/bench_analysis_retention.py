"""Analysis bench: GST retention drift and the refresh schedule.

Reads the paper's "non-volatile for up to 10 years" as the industry spec
it is (10 years at 85 C) and derives the deployment consequence: the
refresh cadence needed to hold 8-bit weights within half an LSB across
operating temperatures.
"""

from repro.devices.drift import RetentionModel, refresh_schedule
from repro.eval.formatting import format_table


def test_analysis_retention(benchmark, record_report):
    rows = benchmark.pedantic(refresh_schedule, rounds=1, iterations=1)
    text = format_table(
        ["temperature (C)", "tau (years)", "refresh interval (days)"],
        [[r["temperature_c"], r["tau_years"], r["refresh_interval_days"]]
         for r in rows],
        title="GST retention: weight-refresh schedule for half-LSB 8-bit drift",
    )
    model = RetentionModel()
    text += (
        f"\n\nanchor: tau = 10 years at 85 C (the paper's figure, read as the "
        f"industry retention spec); Ea = {model.activation_energy_ev} eV.\n"
        "At room temperature weights effectively never need refreshing; at\n"
        "the 85 C spec corner an 8-bit deployment refreshes weekly; hot\n"
        "automotive corners demand minutes-scale refresh."
    )
    record_report("analysis_retention", text)

    by_temp = {r["temperature_c"]: r for r in rows}
    # Room temperature: capped at the 'never' horizon.
    assert by_temp[25.0]["refresh_interval_days"] > 365 * 100
    # 85 C: days-to-weeks cadence.
    assert 1 < by_temp[85.0]["refresh_interval_days"] < 60
    # Monotone with temperature.
    intervals = [r["refresh_interval_s"] for r in rows]
    assert all(a >= b for a, b in zip(intervals, intervals[1:]))
