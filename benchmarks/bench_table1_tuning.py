"""Bench: regenerate Table I (tuning method comparison)."""

from conftest import comparison_text

from repro.eval.tables import table1_tuning


def test_table1_tuning(benchmark, record_report):
    report = benchmark(table1_tuning)
    record_report("table1_tuning", report.text + comparison_text(report.comparisons))
    # Device constants must match the paper exactly.
    assert report.max_relative_error() < 1e-9
