"""Analysis bench: accuracy vs weight bit-resolution.

Quantifies Sec. II-B: low-resolution (thermally tuned) banks break
*training* long before they break deployment.  In-situ SGD needs the
weight grid fine enough that typical gradient steps survive re-quantization.
"""

from repro.analysis import precision_sweep
from repro.eval.formatting import format_table


def test_analysis_precision(benchmark, record_report):
    points = benchmark.pedantic(
        precision_sweep, kwargs={"bits_list": (2, 3, 4, 6, 8), "epochs": 8},
        rounds=1, iterations=1,
    )
    text = format_table(
        ["bits", "deployed accuracy", "in-situ accuracy", "digital ceiling"],
        [[p.bits, p.deployed_accuracy, p.insitu_accuracy, p.digital_accuracy]
         for p in points],
        title="Weight resolution vs accuracy (deployment vs in-situ training)",
    )
    record_report("analysis_precision", text)
    by_bits = {p.bits: p for p in points}
    # Training collapses at 2 bits while deployment merely degrades.
    assert by_bits[2].insitu_accuracy < by_bits[2].deployed_accuracy - 0.1
    # 6 and 8 bits both recover the ceiling at this scale; training is the
    # resolution-hungry path.
    assert by_bits[8].training_drop < 0.05
    assert by_bits[4].insitu_accuracy > by_bits[2].insitu_accuracy + 0.2
