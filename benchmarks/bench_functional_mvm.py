"""Performance microbenchmarks of the functional simulator's hot paths.

These guard the vectorization invariants the HPC guides require: bank
programming and the analog MVP must be array operations, not per-ring
Python loops.  Thresholds are generous (they catch accidental O(n) Python
regressions, not platform noise).
"""

import numpy as np
import pytest

from repro.arch.weight_bank import WeightBank
from repro.devices.activation_cell import GSTActivationCell
from repro.devices.gst import patch_transmission


@pytest.fixture
def programmed_bank(rng=np.random.default_rng(0)):
    bank = WeightBank()
    bank.program(rng.uniform(-1, 1, (16, 16)))
    return bank


def test_bank_program_speed(benchmark):
    bank = WeightBank()
    w = np.random.default_rng(1).uniform(-1, 1, (16, 16))
    benchmark(bank.program, w)


def test_bank_matvec_speed(benchmark, programmed_bank):
    x = np.random.default_rng(2).uniform(-1, 1, 16)
    benchmark(programmed_bank.matvec, x)


def test_bank_matmat_batch_speed(benchmark, programmed_bank):
    x = np.random.default_rng(3).uniform(-1, 1, (16, 256))
    result = benchmark(programmed_bank.matmat, x)
    assert result.shape == (16, 256)


def test_gst_vectorized_transmission_speed(benchmark):
    fractions = np.linspace(0, 1, 10_000)
    out = benchmark(patch_transmission, fractions, 0.3e-6)
    assert out.shape == (10_000,)


def test_activation_vectorized_speed(benchmark):
    cell = GSTActivationCell()
    h = np.random.default_rng(4).normal(size=100_000)
    out = benchmark(cell.activate, h)
    assert out.shape == (100_000,)
