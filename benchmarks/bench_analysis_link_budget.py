"""Analysis bench: optical link budget and ring design space.

Not a paper figure — the physical scaling analysis behind the paper's
16 x 16 bank choice: how SNR falls with splitter fan-out, what laser power
8-bit outputs require, and where the ring-Q vs weight-range trade-off
leaves the design.
"""

from repro.eval.formatting import format_table
from repro.optics import LinkBudget, best_design, design_space


def link_budget_tables():
    budget = LinkBudget()
    fanout = budget.scaling_table()
    p8 = budget.required_channel_power_w(16, 16, 8)
    p6 = budget.required_channel_power_w(16, 16, 6)
    designs = design_space()
    return fanout, p6, p8, designs


def test_link_budget_and_ring_design(benchmark, record_report):
    fanout, p6, p8, designs = benchmark.pedantic(
        link_budget_tables, rounds=1, iterations=1
    )
    text = format_table(
        ["rows (1:J split)", "SNR (dB)", "achievable bits", "power at bank (uW)"],
        [[r["rows"], r["snr_db"], r["achievable_bits"], r["power_at_bank_uw"]]
         for r in fanout],
        title="Link budget: fan-out sweep at 16 columns, 1 mW/channel",
    )
    text += (
        f"\n\nrequired per-channel laser power (16x16 bank):"
        f"\n  6-bit output: {p6 * 1e3:.2f} mW"
        f"\n  8-bit output: {p8 * 1e3:.2f} mW\n\n"
    )
    text += format_table(
        ["coupling", "patch (um)", "Q", "d_sym", "leakage (dB)", "viable"],
        [[p.coupling, p.patch_length_m * 1e6, p.q_factor, p.d_sym,
          p.worst_leakage_db, p.viable] for p in designs],
        title="Ring/GST co-design space (16 channels at 1.6 nm)",
    )
    record_report("analysis_link_budget", text)

    # SNR must fall monotonically with fan-out.
    snrs = [r["snr_db"] for r in fanout]
    assert all(a > b for a, b in zip(snrs, snrs[1:]))
    # 8-bit outputs need more power than 6-bit, both milliwatt-class.
    assert p8 > p6 > 0
    # The design space contains viable signed-weight points and the
    # documented Q/loss tension (some high-Q long-patch points not viable).
    assert any(p.viable for p in designs)
    assert any(not p.viable for p in designs)
    best = best_design(designs)
    assert best.viable and best.d_sym > 0
