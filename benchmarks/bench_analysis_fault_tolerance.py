"""Analysis bench: yield / stuck-cell fault tolerance.

Worn or defective PCM cells hold one level forever.  This sweep deploys
the reference classifier on accelerators with increasing stuck-at-zero
cell fractions and measures the accuracy degradation curve — the yield
question a fab or system integrator asks about a 2.9-million-cell chip
(44 PEs x 256 weight cells + activation cells).
"""

import numpy as np

from repro import TridentAccelerator
from repro.eval.formatting import format_table
from repro.nn.datasets import Dataset, make_blobs, standardize
from repro.nn.reference import DigitalMLP

FAULT_FRACTIONS = (0.0, 0.05, 0.2, 0.5, 0.8)


def fault_sweep(trials: int = 5, seed: int = 5):
    data = make_blobs(n_samples=300, n_features=10, n_classes=3, spread=1.2, seed=seed)
    data = Dataset(x=np.clip(standardize(data.x) / 3, -1, 1), y=data.y)
    train, test = data.split(0.8, seed=1)
    mlp = DigitalMLP([10, 14, 3], activation="gst", seed=7)
    for epoch in range(8):
        for xb, yb in train.batches(16, seed=epoch):
            mlp.train_step(xb, yb, lr=0.4)

    rows = []
    for fraction in FAULT_FRACTIONS:
        accs = []
        for trial in range(trials):
            acc = TridentAccelerator()
            acc.map_mlp([10, 14, 3])
            rng = np.random.default_rng(100 + trial)
            for pe in acc.pes:
                pe.bank.inject_stuck_faults(fraction, rng)
            acc.set_weights([w.copy() for w in mlp.weights])
            pred = np.argmax(acc.forward_batch(test.x), axis=1)
            accs.append(float(np.mean(pred == test.y)))
        rows.append([fraction * 100, float(np.mean(accs)), float(np.min(accs))])
    return rows


def test_analysis_fault_tolerance(benchmark, record_report):
    rows = benchmark.pedantic(fault_sweep, rounds=1, iterations=1)
    text = format_table(
        ["stuck cells (%)", "mean accuracy", "worst accuracy"],
        rows,
        title="Stuck-at-zero cell fraction vs deployed accuracy (5 instances)",
    )
    text += (
        "\n\nFinding: stuck-at-zero cells act like dropout — the network "
        "tolerates\nsurprisingly large dead fractions (tens of percent) "
        "before collapsing,\nso weight-bank yield is not the binding "
        "constraint on chip economics."
    )
    record_report("analysis_fault_tolerance", text)
    by_fraction = {r[0]: r for r in rows}
    # Moderate dead fractions are survivable (the dropout-like finding)...
    assert by_fraction[5.0][1] >= by_fraction[0.0][1] - 0.1
    # ... but majority-dead banks finally collapse.
    assert by_fraction[80.0][1] < by_fraction[0.0][1] - 0.05
    means = [r[1] for r in rows]
    assert means[0] >= means[-1]
