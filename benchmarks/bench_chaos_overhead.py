"""Disabled-chaos overhead gate on the batched forward path.

The chaos hook points live in ``AcceleratorWorker.execute`` (and its
sharded sibling), bracketing ``forward_batch``: two crash checks, one
output-corruption hook, and the always-on finite-output integrity gate.
The contract (docs/ARCHITECTURE.md §13) is that with no active
:class:`~repro.chaos.session.ChaosSession` each hook costs one
module-global read, so a serving stack that never enables chaos pays
(nearly) nothing for carrying it.  This bench holds the whole
per-batch hook budget — including the integrity gate's ``isfinite``
scan, the one piece that runs real work even with chaos off — to < 1%
of a batched forward pass:

    2 x crash_check + corrupt_output + isfinite(outputs)  <  1% x wall.
"""

import time

import numpy as np

from repro.arch import TridentAccelerator
from repro.chaos.session import corrupt_output, crash_check, disable, enabled

DIMS = [64, 48, 10]
BATCH = 256
MAX_DISABLED_OVERHEAD = 0.01
MICRO_ITERS = 100_000


def _mapped_accelerator(seed: int = 0) -> TridentAccelerator:
    rng = np.random.default_rng(seed)
    acc = TridentAccelerator()
    acc.map_mlp(DIMS)
    acc.set_weights(
        [rng.uniform(-1, 1, (o, i)) for i, o in zip(DIMS[:-1], DIMS[1:])]
    )
    return acc


def _time_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _per_call(fn, iters: int = MICRO_ITERS) -> float:
    def loop():
        for _ in range(iters):
            fn()

    return min(_time_once(loop) for _ in range(3)) / iters


def test_disabled_chaos_under_one_percent(record_report):
    disable()
    assert not enabled()
    acc = _mapped_accelerator()
    xs = np.random.default_rng(1).uniform(-1, 1, (BATCH, DIMS[0]))
    outputs = acc.forward_batch(xs)  # warmup + a realistic output array
    wall = min(_time_once(lambda: acc.forward_batch(xs)) for _ in range(5))

    # Disabled-path primitive costs (tight loops resolve sub-us costs).
    crash_cost = _per_call(lambda: crash_check(0, "dispatch", 0.0))
    corrupt_cost = _per_call(lambda: corrupt_output(0, 0.0, outputs))
    gate_cost = _per_call(
        lambda: np.all(np.isfinite(outputs)), iters=MICRO_ITERS // 10
    )

    # Hook sites one worker.execute runs per batch: crash checks at
    # dispatch and drain, one corruption hook, one integrity gate.
    budget = 2 * crash_cost + corrupt_cost + gate_cost
    ratio = budget / wall

    record_report(
        "chaos_overhead",
        "\n".join(
            [
                f"forward_batch (B={BATCH}, dims {DIMS}), chaos disabled: "
                f"{wall * 1e3:.2f} ms",
                f"disabled crash_check: {crash_cost * 1e9:.0f} ns/call, "
                f"disabled corrupt_output: {corrupt_cost * 1e9:.0f} ns/call",
                f"finite-output integrity gate: {gate_cost * 1e6:.2f} us/batch",
                f"hook budget per batch: {budget * 1e6:.2f} us "
                f"({ratio * 100:.3f}% of the pass; bar "
                f"{MAX_DISABLED_OVERHEAD * 100:.0f}%)",
            ]
        ),
    )
    assert ratio < MAX_DISABLED_OVERHEAD, (
        f"disabled chaos costs {ratio * 100:.2f}% of a batched forward "
        f"pass (bar {MAX_DISABLED_OVERHEAD * 100:.0f}%)"
    )


def test_disabled_hooks_are_identity():
    """With no session, hooks return None / the exact input array."""
    disable()
    outputs = np.ones((4, 3))
    assert crash_check(0, "dispatch", 0.0) is None
    assert crash_check(1, "drain", 1e9) is None
    assert corrupt_output(0, 0.0, outputs) is outputs
