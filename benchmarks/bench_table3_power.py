"""Bench: regenerate Table III (per-PE power breakdown)."""

from conftest import comparison_text

from repro.eval.tables import table3_power


def test_table3_power(benchmark, record_report):
    report = benchmark(table3_power)
    record_report("table3_power", report.text + comparison_text(report.comparisons))
    # Paper rounds 0.676 W -> "0.67 W": allow 3 %.
    assert report.max_relative_error() < 0.03
