"""Ablation: true backprop vs Direct Feedback Alignment on the hardware.

The paper's Related Work argues for Trident's true-gradient training over
the DFA used by Filipovich et al. [9].  This bench races both on the same
functional hardware and prices DFA's genuine advantage — resident feedback
matrices cost no backward retuning — against its convergence penalty.
"""

import numpy as np

from repro import TridentAccelerator
from repro.eval.formatting import format_table
from repro.nn.datasets import Dataset, make_blobs, standardize
from repro.nn.reference import DigitalMLP
from repro.training.dfa import DFATrainer
from repro.training.insitu import InSituTrainer
from repro.training.trainer import train_classifier

DIMS = [8, 12, 3]


def dfa_vs_bp(epochs: int = 6, seed: int = 1):
    data = make_blobs(n_samples=300, n_features=8, n_classes=3, spread=0.8, seed=seed)
    data = Dataset(x=np.clip(standardize(data.x) / 3, -1, 1), y=data.y)
    train, test = data.split(0.8, seed=0)

    results = []
    for name in ("backprop", "dfa"):
        acc = TridentAccelerator()
        acc.map_mlp(DIMS)
        acc.set_weights(
            [w.copy() for w in DigitalMLP(DIMS, activation="gst", seed=2).weights]
        )
        trainer = (
            InSituTrainer(acc, lr=0.3)
            if name == "backprop"
            else DFATrainer(acc, lr=0.3, seed=4)
        )
        hist = train_classifier(trainer, train, test, epochs=epochs, batch_size=16)
        results.append(
            [
                name,
                hist.test_accuracies[1],  # early convergence
                hist.final_test_accuracy,
                acc.counters.bank_writes,
                acc.counters.symbols,
            ]
        )
    return results


def test_ablation_dfa_vs_backprop(benchmark, record_report):
    rows = benchmark.pedantic(dfa_vs_bp, rounds=1, iterations=1)
    text = format_table(
        ["algorithm", "epoch-2 accuracy", "final accuracy", "bank writes", "symbols"],
        rows,
        title="Ablation: true backprop (Trident) vs DFA [9] on the photonic hardware",
    )
    record_report("ablation_dfa", text)
    by_name = {r[0]: r for r in rows}
    # DFA saves retuning (its feedback matrices stay resident) ...
    assert by_name["dfa"][3] < by_name["backprop"][3]
    # ... but true-gradient training converges at least as fast early on
    # (the paper's argument for implementing real backprop).
    assert by_name["backprop"][1] >= by_name["dfa"][1]
    # Both reach a good solution on this small task.
    assert by_name["backprop"][2] > 0.9
    assert by_name["dfa"][2] > 0.9
