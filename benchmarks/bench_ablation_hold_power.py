"""Ablation: honest thermal-volatility accounting.

The paper's Fig 4 comparison charges all tuning technologies per *write
event* (matching its 16.4 % DEAP-CNN margin).  Thermally tuned banks,
however, must keep their heaters on while weights are held — 1.7 mW per
ring (Table I).  This bench turns that hold power on and shows the honest
gap: Trident's non-volatility advantage grows several-fold, strengthening
(not weakening) the paper's conclusion.
"""

import numpy as np

from repro.baselines import photonic_baselines
from repro.dataflow.cost_model import PhotonicCostModel
from repro.eval.formatting import format_table
from repro.nn import build_model
from repro.nn.models import PAPER_MODELS


def hold_power_ablation(batch: int = 128):
    nets = {m: build_model(m) for m in PAPER_MODELS}
    archs = photonic_baselines()
    trident = archs[0]
    tr = {m: PhotonicCostModel(trident, batch=batch).model_cost(n) for m, n in nets.items()}
    rows = []
    for arch in archs[1:]:
        ratios = {}
        for charge in (False, True):
            cm = PhotonicCostModel(arch, batch=batch, charge_hold_power=charge)
            ratios[charge] = float(
                np.mean([cm.model_cost(n).energy_j / tr[m].energy_j for m, n in nets.items()])
            )
        rows.append([arch.name, (ratios[False] - 1) * 100, (ratios[True] - 1) * 100])
    return rows


def test_ablation_hold_power(benchmark, record_report):
    rows = benchmark.pedantic(hold_power_ablation, rounds=1, iterations=1)
    text = format_table(
        ["baseline", "paper accounting: extra energy %", "honest hold power: extra energy %"],
        rows,
        title="Ablation: charging volatile-tuning hold power (avg over 5 CNNs)",
    )
    record_report("ablation_hold_power", text)
    for name, event_only, honest in rows:
        # Honest accounting can only widen the gap in Trident's favour.
        assert honest > event_only, name
    # For the thermal baselines the widening is dramatic (>2x gap).
    by_name = dict((r[0], r) for r in rows)
    assert by_name["deap-cnn"][2] > 2 * by_name["deap-cnn"][1]
