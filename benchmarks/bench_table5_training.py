"""Bench: regenerate Table V (time to train 50,000 images).

The Xavier column is calibrated to the paper (it encodes published Jetson
behaviour); the Trident column is this library's mechanistic training cost
model.  The paper's crossover — GoogleNet trains *slower* on Trident while
VGG-16/ResNet-50 train faster — must emerge from the model.  MobileNetV2 is
the documented deviation (depthwise outer products are retune-bound; see
EXPERIMENTS.md).
"""

from conftest import comparison_text

from repro.eval.tables import table5_training


def test_table5_training(benchmark, record_report):
    report = benchmark.pedantic(table5_training, rounds=1, iterations=1)
    record_report("table5_training", report.text + comparison_text(report.comparisons))
    rows = {r[0]: (r[1], r[2]) for r in report.rows}
    # Sign pattern (3 of 4; MobileNetV2 deviates, documented).
    assert rows["vgg16"][1] < rows["vgg16"][0]
    assert rows["resnet50"][1] < rows["resnet50"][0]
    assert rows["googlenet"][1] > rows["googlenet"][0]
    # Magnitudes for the tile-dominated models.
    by_metric = {c.metric: c for c in report.comparisons}
    assert by_metric["googlenet trident time"].within < 0.25
    assert by_metric["vgg16 trident time"].within < 0.25
