"""Bench: regenerate Table II and numerically verify each operating mode."""

from repro.eval.tables import table2_mapping_check


def test_table2_mapping(benchmark, record_report):
    report = benchmark(table2_mapping_check)
    record_report("table2_mapping", report.text)
    # Every mode's hardware result matches the exact algebra to
    # quantization precision.
    for row in report.rows:
        assert row[-1] < 0.05, row
