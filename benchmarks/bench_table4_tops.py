"""Bench: regenerate Table IV (Trident vs electronic accelerators)."""

from conftest import comparison_text

from repro.eval.tables import table4_tops


def test_table4_tops(benchmark, record_report):
    report = benchmark(table4_tops)
    record_report("table4_tops", report.text + comparison_text(report.comparisons))
    by_metric = {c.metric: c for c in report.comparisons}
    assert by_metric["trident TOPS"].within < 0.01
    # Note: we compare against 7.8/30 = 0.26 TOPS/W; the paper's quoted
    # 0.29 is inconsistent with its own TOPS and power numbers.
    assert by_metric["trident TOPS/W (7.8/30)"].within < 0.01
