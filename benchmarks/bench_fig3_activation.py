"""Bench: regenerate Fig 3 (GST activation cell transfer function)."""

import numpy as np
from conftest import comparison_text

from repro.eval.figures import fig3_activation_transfer


def test_fig3_activation(benchmark, record_report):
    report = benchmark(fig3_activation_transfer)
    xs = np.array(list(report.series["input_energy_pj"].values()))
    ys = np.array(list(report.series["output_energy_pj"].values()))
    lines = [report.title, "-" * 60, "input_pJ  output_pJ"]
    for x, y in zip(xs[::20], ys[::20]):
        lines.append(f"{x:8.1f}  {y:9.3f}")
    record_report(
        "fig3_activation", "\n".join(lines) + comparison_text(report.comparisons)
    )
    assert report.max_relative_error() < 0.01
    # Shape: flat-zero below threshold, strictly increasing above.
    below = ys[xs < 430.0]
    above = ys[xs > 440.0]
    assert np.allclose(below, 0.0)
    assert np.all(np.diff(above) > 0)
