"""Batched vs per-sample functional execution on a tiled MLP.

The acceptance bar for the batched execution engine: on a 64 -> 48 -> 10
MLP tiled over 16x16 banks, ``forward_batch`` must (a) reproduce the
per-sample path exactly — identical outputs on noise-free hardware and
identical event counters always — and (b) beat it by >= 5x wall-clock at
batch 256.  Timed with ``time.perf_counter`` over whole passes rather than
the pytest-benchmark fixture because the parity comparison needs both
paths run once each against the same programmed state.
"""

import time

import numpy as np

from repro.arch import Profiler, TridentAccelerator

DIMS = [64, 48, 10]
BATCH = 256
MIN_SPEEDUP = 5.0


def _mapped_accelerator(seed: int = 0) -> TridentAccelerator:
    rng = np.random.default_rng(seed)
    acc = TridentAccelerator()
    acc.map_mlp(DIMS)
    acc.set_weights(
        [rng.uniform(-1, 1, (o, i)) for i, o in zip(DIMS[:-1], DIMS[1:])]
    )
    return acc


def test_batched_forward_parity_and_speedup(record_report):
    acc = _mapped_accelerator()
    assert any(len(layer.tiles) > 1 for layer in acc.layers), (
        "the bar is multi-tile streaming; enlarge DIMS if banks grew"
    )
    xs = np.random.default_rng(1).uniform(-1, 1, (BATCH, DIMS[0]))

    with Profiler(acc) as prof_batch:
        out_batch = acc.forward_batch(xs)
    with Profiler(acc) as prof_sample:
        out_sample = np.stack([acc.forward(x) for x in xs])

    np.testing.assert_allclose(out_batch, out_sample, rtol=0, atol=1e-12)
    assert (
        prof_batch.report.counters.as_dict()
        == prof_sample.report.counters.as_dict()
    )

    # Re-time over fresh passes so first-call warmup does not flatter
    # either side; take the best of a few repeats each.
    wall_batch = min(_time_once(acc.forward_batch, xs) for _ in range(3))
    wall_sample = min(
        _time_once(lambda b: [acc.forward(x) for x in b], xs) for _ in range(3)
    )
    speedup = wall_sample / wall_batch

    record_report(
        "functional_batch_scaling",
        "\n\n".join(
            [
                prof_batch.report.render(f"forward_batch (B={BATCH})"),
                prof_sample.report.render(f"per-sample forward x{BATCH}"),
                f"speedup (best-of-3): {speedup:.1f}x",
            ]
        ),
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched path only {speedup:.1f}x faster (bar: {MIN_SPEEDUP}x)"
    )


def _time_once(fn, xs) -> float:
    t0 = time.perf_counter()
    fn(xs)
    return time.perf_counter() - t0
