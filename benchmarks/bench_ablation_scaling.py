"""Ablation: power-budget sweep (how throughput scales with the PE count).

The paper fixes 30 W; edge deployments span 5-60 W.  This sweep checks the
scaling behaviour the paper's Sec. V-A argument relies on ("the more energy
efficient tuning method allows Trident to scale to more PEs").
"""

import numpy as np

from repro.baselines import photonic_baselines
from repro.dataflow.cost_model import PhotonicCostModel
from repro.eval.formatting import format_table
from repro.nn import build_model

BUDGETS_W = (5.0, 10.0, 20.0, 30.0, 45.0, 60.0)


def scaling_sweep():
    net = build_model("resnet50")
    rows = []
    for budget in BUDGETS_W:
        row = [budget]
        for arch in photonic_baselines(budget):
            cost = PhotonicCostModel(arch, batch=128).model_cost(net)
            row.extend([arch.n_pes, cost.inferences_per_second])
        rows.append(row)
    return rows


def test_ablation_power_scaling(benchmark, record_report):
    rows = benchmark.pedantic(scaling_sweep, rounds=1, iterations=1)
    headers = ["budget (W)"]
    for name in ("trident", "deap-cnn", "crosslight", "pixel"):
        headers.extend([f"{name} PEs", f"{name} inf/s"])
    text = format_table(
        headers, rows, title="Ablation: 30 W budget sweep (ResNet-50)"
    )
    record_report("ablation_scaling", text)
    budgets = [r[0] for r in rows]
    trident_ips = [r[2] for r in rows]
    trident_pes = [r[1] for r in rows]
    # Monotone scaling with budget.
    assert all(np.diff(trident_pes) > 0)
    assert all(np.diff(trident_ips) > 0)
    # Trident keeps the PE-count lead at every budget.
    for row in rows:
        assert row[1] >= max(row[3], row[5], row[7]), row
