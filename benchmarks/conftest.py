"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures under
pytest-benchmark timing, asserts the paper-vs-measured tolerances, and
writes the rendered report to ``benchmarks/results/`` so the artifacts are
inspectable after a ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_report(results_dir):
    """Write a rendered report to benchmarks/results/<name>.txt."""

    def _record(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _record


def comparison_text(comparisons) -> str:
    """Render paper-vs-measured records as appended lines."""
    lines = ["", "paper vs measured:"]
    for c in comparisons:
        lines.append(
            f"  {c.metric:32s} paper={c.paper_value:12.3f}  "
            f"measured={c.measured_value:12.3f}  ({c.relative_error * 100:+.1f}%) {c.units}"
        )
    return "\n".join(lines)
