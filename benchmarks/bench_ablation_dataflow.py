"""Ablation: why weight-stationary is the *only* viable photonic dataflow.

Electronic accelerators choose among weight-/output-/row-stationary
dataflows with modest energy differences.  On a photonic weight bank the
choice is existential: weights live in GST states that cost 660 pJ and
300 ns *per write*.  Any dataflow that does not keep weights stationary
must reprogram cells at the MAC rate:

- **weight-stationary** (the paper's choice): each weight written once per
  tile residency, reused over all output positions x batch;
- **output-stationary counterfactual**: outputs rest in accumulators while
  weights stream through the bank — every MAC implies a cell write, so
  tuning energy is MACs x 660 pJ and every symbol waits on a 300 ns write.

The closed-form comparison shows the counterfactual is ~3 orders of
magnitude worse on both axes — the quantitative version of the paper's
implicit dataflow argument.
"""

from repro.dataflow.cost_model import PhotonicArch, PhotonicCostModel
from repro.eval.formatting import format_table
from repro.nn import build_model


def dataflow_comparison(batch: int = 128):
    arch = PhotonicArch.trident()
    rows = []
    for model in ("googlenet", "resnet50"):
        net = build_model(model)
        ws = PhotonicCostModel(arch, batch=batch).model_cost(net)
        macs = ws.total_macs
        # Output-stationary counterfactual (closed form): one cell write
        # per MAC; each bank-symbol gated by a write.
        os_tuning_j = macs * arch.write_energy_per_cell_j
        symbols = macs / (arch.bank_rows * arch.bank_cols)
        os_time_s = symbols * (arch.write_time_s + 1.0 / arch.symbol_rate_hz) / arch.n_pes
        os_energy_j = os_tuning_j + symbols * arch.symbol_energy_j
        rows.append(
            [
                model,
                ws.energy_j * 1e3,
                os_energy_j * 1e3,
                os_energy_j / ws.energy_j,
                ws.time_s * 1e3,
                os_time_s * 1e3,
                os_time_s / ws.time_s,
            ]
        )
    return rows


def test_ablation_dataflow(benchmark, record_report):
    rows = benchmark.pedantic(dataflow_comparison, rounds=1, iterations=1)
    text = format_table(
        ["model", "WS energy (mJ)", "OS energy (mJ)", "energy ratio",
         "WS time (ms)", "OS time (ms)", "time ratio"],
        rows,
        title="Ablation: weight-stationary vs output-stationary counterfactual",
    )
    record_report("ablation_dataflow", text)
    for row in rows:
        # The counterfactual loses by orders of magnitude on both axes.
        assert row[3] > 100, row
        assert row[6] > 50, row
