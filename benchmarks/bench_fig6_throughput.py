"""Bench: regenerate Fig 6 (inferences/s, all seven accelerators)."""

from conftest import comparison_text

from repro.eval.figures import fig6_inferences_per_second
from repro.eval.formatting import format_table


def test_fig6_throughput(benchmark, record_report):
    report = benchmark.pedantic(fig6_inferences_per_second, rounds=1, iterations=1)
    models = list(report.series["trident"])
    rows = [
        [arch] + [series[m] for m in models]
        for arch, series in report.series.items()
    ]
    text = format_table(
        ["accelerator"] + [f"{m} (inf/s)" for m in models], rows, title=report.title
    )
    record_report("fig6_throughput", text + comparison_text(report.comparisons))
    # All six average advantages within 3 % of the paper.
    assert report.max_relative_error() < 0.03
