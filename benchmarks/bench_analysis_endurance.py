"""Analysis bench: PCM endurance under real inference workloads.

Extension of the paper's Sec. III-C endurance remark.  The paper argues the
trillion-cycle rating makes wear-out a non-issue; this analysis shows the
two PCM populations age at very different rates — the activation cells
switch per firing event and exhaust the trillion-cycle budget within
hours-to-days of full-rate inference, while the weight banks last years.
"""

from repro.analysis import endurance_report
from repro.eval.formatting import format_table
from repro.nn import build_model
from repro.nn.models import PAPER_MODELS


def endurance_table():
    rows = []
    for model in PAPER_MODELS:
        rep = endurance_report(build_model(model))
        rows.append(
            [
                model,
                rep.weight_writes_per_inference,
                rep.activation_firings_per_inference,
                rep.weight_lifetime_years,
                rep.activation_lifetime_hours,
                rep.limiting_population,
            ]
        )
    return rows


def test_analysis_endurance(benchmark, record_report):
    rows = benchmark.pedantic(endurance_table, rounds=1, iterations=1)
    text = format_table(
        ["model", "weight writes/inf", "act firings/cell/inf",
         "weight lifetime (yr)", "activation lifetime (h)", "limiter"],
        rows,
        title="PCM wear-out at full-rate inference (1e12-cycle rating)",
    )
    record_report("analysis_endurance", text)
    for row in rows:
        # On every model the activation population is the limiter and
        # exhausts the rating in under a year of continuous operation.
        assert row[5] == "activation", row
        assert row[4] < 24 * 365, row
        # Weight banks wear orders of magnitude slower (months to years
        # even for parameter-heavy AlexNet at full rate).
        assert row[3] > 0.1, row
