"""Bench: regenerate Fig 5 (Trident chip area breakdown)."""

from conftest import comparison_text

from repro.eval.figures import fig5_area_breakdown
from repro.eval.formatting import format_table


def test_fig5_area(benchmark, record_report):
    report = benchmark(fig5_area_breakdown)
    rows = [
        [name, area, report.series["percentage"][name]]
        for name, area in report.series["area_mm2"].items()
    ]
    text = format_table(
        ["component", "area (mm^2)", "percentage"], rows, title=report.title
    )
    record_report("fig5_area", text + comparison_text(report.comparisons))
    assert report.max_relative_error() < 0.005
    # The paper's observation: TIAs dominate the floorplan.
    shares = {
        k: v for k, v in report.series["percentage"].items() if k != "Total"
    }
    assert max(shares, key=shares.get) == "TIA"
