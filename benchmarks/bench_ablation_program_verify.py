"""Ablation: program-and-verify write fidelity vs energy overhead.

Single-pulse programming leaves level-placement error on the weights;
iterative program-and-verify (the multilevel-PCM standard) buys accuracy
with extra pulses — extra energy and endurance.  This bench sweeps the
acceptance tolerance and reports the trade, plus the analytical pulse-count
expectation against the Monte Carlo.
"""

import numpy as np

from repro.devices.program_verify import ProgramVerifyConfig, ProgramVerifyWriter
from repro.eval.formatting import format_table

TOLERANCES = (3.0, 2.0, 1.0, 0.5)


def program_verify_sweep(n_cells: int = 4096, seed: int = 2):
    rng = np.random.default_rng(seed)
    targets = rng.integers(0, 255, size=n_cells).astype(float)
    single_cfg = ProgramVerifyConfig(max_iterations=1, tolerance_levels=1.0)
    single = ProgramVerifyWriter(single_cfg, seed=seed).write(targets)
    rows = [
        [
            "single pulse",
            1.0,
            float(np.abs(single.level_errors(targets)).mean()),
            single.energy_j * 1e9 / n_cells,
            1.0,
        ]
    ]
    for tol in TOLERANCES:
        cfg = ProgramVerifyConfig(tolerance_levels=tol)
        writer = ProgramVerifyWriter(cfg, seed=seed)
        result = writer.write(targets)
        rows.append(
            [
                f"verify (tol={tol})",
                result.mean_pulses_per_cell,
                float(np.abs(result.level_errors(targets)).mean()),
                result.energy_j * 1e9 / n_cells,
                writer.expected_pulses_per_cell(),
            ]
        )
    return rows


def test_ablation_program_verify(benchmark, record_report):
    rows = benchmark.pedantic(program_verify_sweep, rounds=1, iterations=1)
    text = format_table(
        ["scheme", "pulses/cell", "mean |error| (levels)",
         "energy/cell (nJ)", "analytical pulses"],
        rows,
        title="Ablation: program-and-verify tolerance sweep (4096 cells)",
    )
    record_report("ablation_program_verify", text)
    single_err = rows[0][2]
    tightest = rows[-1]
    # Verify-loop beats single-pulse accuracy, at an energy premium.
    assert tightest[2] < single_err
    assert tightest[3] > rows[0][3]
    # Monte Carlo pulse counts track the analytical expectation.
    for row in rows[1:]:
        assert row[1] == __import__("pytest").approx(row[4], rel=0.1)
    # Tighter tolerance -> more pulses.
    pulses = [r[1] for r in rows[1:]]
    assert all(a <= b for a, b in zip(pulses, pulses[1:]))
