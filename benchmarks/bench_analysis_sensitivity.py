"""Analysis bench: parameter-sensitivity elasticities.

Which device parameters actually move the headline metrics — the
quantitative version of the paper's Table III emphasis.
"""

from repro.analysis import parameter_sensitivity
from repro.eval.formatting import format_table


def test_analysis_sensitivity(benchmark, record_report):
    records = benchmark.pedantic(
        parameter_sensitivity, kwargs={"model": "resnet50", "batch": 8},
        rounds=1, iterations=1,
    )
    text = format_table(
        ["parameter", "energy elasticity", "latency elasticity"],
        [[r.parameter, r.energy_elasticity, r.latency_elasticity] for r in records],
        title="Elasticity of per-inference energy/latency (ResNet-50, batch 8, +/-20%)",
    )
    record_report("analysis_sensitivity", text)
    by_name = {r.parameter: r for r in records}
    # Latency rides on the symbol rate; energy splits between streaming
    # power and (at small batch) tuning energy.
    assert by_name["symbol_rate_hz"].latency_elasticity < -0.8
    assert by_name["streaming_power_pe_w"].energy_elasticity > 0.3
    assert by_name["write_energy_per_cell_j"].energy_elasticity > 0.05
