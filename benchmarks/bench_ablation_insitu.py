"""Ablation: in-situ training vs offline-train-then-deploy mismatch.

The paper's motivating claim (Sec. I): training digitally and mapping the
weights onto analog hardware leaves accuracy on the table because the
digital model cannot capture quantization and device noise; training on the
hardware itself absorbs them.  This bench measures both on the functional
simulator.
"""

import numpy as np

from repro import InSituTrainer, NoiseModel, TridentAccelerator
from repro.eval.formatting import format_table
from repro.nn.datasets import Dataset, make_blobs, standardize
from repro.nn.reference import DigitalMLP
from repro.training.trainer import train_classifier

DIMS = [10, 14, 3]


def insitu_ablation(seed: int = 5):
    # Overlapping clusters: the decision boundary passes near many points,
    # so analog noise + 8-bit quantization visibly move predictions.
    data = make_blobs(n_samples=400, n_features=10, n_classes=3, spread=2.0, seed=seed)
    data = Dataset(x=np.clip(standardize(data.x) / 3, -1, 1), y=data.y)
    train, test = data.split(0.8, seed=1)
    noise = NoiseModel(
        enabled=True, thermal_noise_std=0.1, shot_noise_coeff=0.02,
        rin_coeff=0.01, seed=11,
    )

    # Digital ceiling.
    digital = DigitalMLP(DIMS, activation="gst", seed=7)
    for epoch in range(8):
        for xb, yb in train.batches(16, seed=epoch):
            digital.train_step(xb, yb, lr=0.4)
    digital_acc = digital.accuracy(test.x, test.y)

    # Offline-trained weights deployed on noisy quantized hardware.
    deployed = TridentAccelerator(noise=noise)
    deployed.map_mlp(DIMS)
    deployed.set_weights([w.copy() for w in digital.weights])
    offline_acc = float(
        np.mean(np.argmax(deployed.forward_batch(test.x), axis=1) == test.y)
    )

    # In-situ training on the same hardware.
    acc = TridentAccelerator(noise=noise)
    acc.map_mlp(DIMS)
    acc.set_weights([w.copy() for w in DigitalMLP(DIMS, activation="gst", seed=7).weights])
    trainer = InSituTrainer(acc, lr=0.4)
    hist = train_classifier(trainer, train, test, epochs=8, batch_size=16)

    return [
        ["digital (no hardware)", digital_acc],
        ["offline-trained, deployed", offline_acc],
        ["in-situ trained on hardware", hist.final_test_accuracy],
    ]


def test_ablation_insitu_vs_offline(benchmark, record_report):
    rows = benchmark.pedantic(insitu_ablation, rounds=1, iterations=1)
    text = format_table(
        ["configuration", "test accuracy"],
        rows,
        title="Ablation: in-situ training vs offline deployment (noisy 8-bit hardware)",
    )
    record_report("ablation_insitu", text)
    by_name = {r[0]: r[1] for r in rows}
    insitu = by_name["in-situ trained on hardware"]
    offline = by_name["offline-trained, deployed"]
    digital = by_name["digital (no hardware)"]
    # In-situ absorbs the hardware mismatch: it beats the deployed
    # offline model and lands within a few points of the digital ceiling.
    assert insitu > offline
    assert insitu >= digital - 0.05
    assert insitu > 0.85
