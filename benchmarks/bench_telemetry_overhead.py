"""Disabled-telemetry overhead gate on the batched forward path.

The telemetry hooks woven through ``forward_batch`` are always compiled
in; the contract (docs/ARCHITECTURE.md §10) is that with no active
session each hook costs one module-global read returning a shared no-op.
This bench holds that to < 2% of a batched forward pass: it
microbenchmarks the disabled hook primitives directly (a tight loop is
the only way to resolve sub-microsecond costs), counts the hook sites
one pass actually executes, and requires

    hooks_per_pass x cost_per_hook  <  2% x forward_batch wall time.

The enabled-session cost is measured too and recorded in the report as
an informational line — enabling tracing is allowed to cost something;
*shipping it disabled* is what must stay free.
"""

import time

import numpy as np

from repro import telemetry
from repro.arch import TridentAccelerator

DIMS = [64, 48, 10]
BATCH = 256
MAX_DISABLED_OVERHEAD = 0.02
MICRO_ITERS = 100_000


def _mapped_accelerator(seed: int = 0) -> TridentAccelerator:
    rng = np.random.default_rng(seed)
    acc = TridentAccelerator()
    acc.map_mlp(DIMS)
    acc.set_weights(
        [rng.uniform(-1, 1, (o, i)) for i, o in zip(DIMS[:-1], DIMS[1:])]
    )
    return acc


def _time_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _per_call(fn, iters: int = MICRO_ITERS) -> float:
    def loop():
        for _ in range(iters):
            fn()

    return min(_time_once(loop) for _ in range(3)) / iters


def test_disabled_overhead_under_two_percent(record_report):
    telemetry.disable()
    acc = _mapped_accelerator()
    xs = np.random.default_rng(1).uniform(-1, 1, (BATCH, DIMS[0]))
    acc.forward_batch(xs)  # warmup
    wall_disabled = min(_time_once(lambda: acc.forward_batch(xs)) for _ in range(5))

    # Disabled-path primitive costs.
    def span_hook():
        with telemetry.trace_span("bench"):
            pass

    span_cost = _per_call(span_hook)
    counter_cost = _per_call(lambda: telemetry.counter("bench_total").inc())

    # Hook sites one forward_batch pass executes: the pass-level span,
    # one span per layer, and the batch + sample counters.
    n_layers = len(acc.layers)
    budget = (1 + n_layers) * span_cost + 2 * counter_cost
    ratio = budget / wall_disabled

    # Informational: the same pass with a live session collecting spans.
    with telemetry.session():
        acc.forward_batch(xs)  # warmup registry/tracer
        wall_enabled = min(
            _time_once(lambda: acc.forward_batch(xs)) for _ in range(5)
        )
    assert not telemetry.enabled()

    record_report(
        "telemetry_overhead",
        "\n".join(
            [
                f"forward_batch (B={BATCH}, dims {DIMS}), telemetry disabled: "
                f"{wall_disabled * 1e3:.2f} ms",
                f"disabled span hook: {span_cost * 1e9:.0f} ns/call, "
                f"disabled counter hook: {counter_cost * 1e9:.0f} ns/call",
                f"hook sites per pass: {1 + n_layers} spans + 2 counters",
                f"disabled-hook cost per pass: {budget * 1e6:.2f} us "
                f"({ratio * 100:.3f}% of the pass; bar "
                f"{MAX_DISABLED_OVERHEAD * 100:.0f}%)",
                f"same pass with a live session: {wall_enabled * 1e3:.2f} ms "
                f"({(wall_enabled / wall_disabled - 1) * 100:+.1f}%, "
                "informational)",
            ]
        ),
    )
    assert ratio < MAX_DISABLED_OVERHEAD, (
        f"disabled telemetry costs {ratio * 100:.2f}% of a batched forward "
        f"pass (bar {MAX_DISABLED_OVERHEAD * 100:.0f}%)"
    )


def test_disabled_hooks_allocate_nothing_per_call():
    """The no-op fast path returns shared singletons, never fresh objects."""
    telemetry.disable()
    assert telemetry.trace_span("a") is telemetry.trace_span("b")
    assert telemetry.counter("a_total") is telemetry.counter("b_total")
    assert telemetry.gauge("g") is telemetry.histogram("h")
