"""Ablation: streaming-batch sweep (tuning amortization).

The paper's weight-stationary argument ("weights are pre-loaded, after
which inference can be performed on many inputs without re-tuning") is a
statement about batch amortization.  This sweep quantifies it: at batch 1
(single-shot edge inference) GST reprogramming dominates energy; by batch
~64 the per-inference cost approaches the streaming floor — and the gap
between batch-1 and steady-state is *much* larger for the thermal
baselines, whose write energy is 1.55x GST's.
"""

from repro.baselines import photonic_baselines
from repro.dataflow.cost_model import PhotonicCostModel
from repro.eval.formatting import format_table
from repro.nn import build_model

BATCHES = (1, 4, 16, 64, 256)


def batch_sweep():
    net = build_model("resnet50")
    archs = {a.name: a for a in photonic_baselines()}
    rows = []
    for batch in BATCHES:
        row = [batch]
        for name in ("trident", "deap-cnn"):
            cost = PhotonicCostModel(archs[name], batch=batch).model_cost(net)
            row.extend(
                [cost.energy_j * 1e3, cost.energy_component("tuning") * 1e3,
                 cost.inferences_per_second]
            )
        rows.append(row)
    return rows


def test_ablation_batch_amortization(benchmark, record_report):
    rows = benchmark.pedantic(batch_sweep, rounds=1, iterations=1)
    text = format_table(
        ["batch",
         "trident E (mJ)", "trident tuning (mJ)", "trident inf/s",
         "deap E (mJ)", "deap tuning (mJ)", "deap inf/s"],
        rows,
        title="Ablation: streaming batch sweep (ResNet-50)",
    )
    record_report("ablation_batch", text)
    by_batch = {r[0]: r for r in rows}
    # Tuning energy amortizes ~linearly with batch.
    assert by_batch[1][2] > 50 * by_batch[64][2]
    # Per-inference energy decreases monotonically with batch.
    energies = [r[1] for r in rows]
    assert all(a >= b for a, b in zip(energies, energies[1:]))
    # At batch 1 tuning dominates Trident's energy (the Table III story).
    assert by_batch[1][2] > 0.5 * by_batch[1][1]
    # Throughput grows with batch then saturates near the streaming bound.
    assert by_batch[256][3] > by_batch[1][3]