"""Ablation: swap Trident's GST tuning for thermal/electric tuning.

Isolates the contribution of the paper's headline device choice: what does
Trident lose if its weight banks are tuned thermally (DEAP-style) or
electro-optically, everything else held fixed?
"""

from dataclasses import replace

from repro.dataflow.cost_model import PhotonicArch, PhotonicCostModel
from repro.devices.tuning import ElectricTuning, GSTTuning, ThermalTuning
from repro.eval.formatting import format_table
from repro.nn import build_model


def tuning_ablation(batch: int = 8):
    """Per-inference cost of ResNet-50 under each tuning technology.

    Small batch so programming energy is visible (edge single-stream use).
    """
    net = build_model("resnet50")
    base = PhotonicArch.trident()
    rows = []
    for tuning in (GSTTuning(), ThermalTuning(), ElectricTuning()):
        arch = replace(
            base,
            name=f"trident-{tuning.method.value}",
            write_energy_per_cell_j=tuning.write_energy_j,
            write_time_s=tuning.write_time_s,
            hold_power_per_cell_w=tuning.hold_power_w,
            weight_bits=tuning.bit_resolution,
        )
        cost = PhotonicCostModel(arch, batch=batch, charge_hold_power=True).model_cost(net)
        rows.append(
            [
                tuning.method.value,
                cost.energy_j * 1e3,
                cost.inferences_per_second,
                tuning.bit_resolution,
                tuning.supports_training(),
            ]
        )
    return rows


def test_ablation_tuning_method(benchmark, record_report):
    rows = benchmark.pedantic(tuning_ablation, rounds=1, iterations=1)
    text = format_table(
        ["tuning", "energy (mJ)", "inf/s", "bits", "trainable"],
        rows,
        title="Ablation: weight-bank tuning technology (ResNet-50, batch 8, honest hold power)",
    )
    record_report("ablation_tuning", text)
    by_method = {r[0]: r for r in rows}
    # GST must dominate: less energy and faster than both alternatives.
    assert by_method["gst"][1] < by_method["thermal"][1]
    assert by_method["gst"][1] < by_method["electric"][1]
    assert by_method["gst"][2] > by_method["thermal"][2]
    # Only GST reaches the 8 bits training needs.
    assert by_method["gst"][4] and not by_method["thermal"][4]
