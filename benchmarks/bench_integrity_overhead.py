"""Enabled-attestation overhead gate on the batched forward path.

ABFT attestation is on the serving hot path: every executed batch runs
``attest_batch``'s rung-1 verify — one checksum-row MVM per layer plus
per-layer output sums against the calibrated thresholds.  The contract
(docs/ARCHITECTURE.md §15) is that this clean-path check stays **< 5%**
of the batched forward pass it attests; the heavier rungs (re-execute,
digital spare) only run after a trip and are not part of the budget.

The enabled path is ``forward_batch(record=True)`` followed by a clean
``attest_batch``, so two bounds are enforced:

- the check itself — ``attest_batch`` — stays under the 5% budget, and
- the recorded forward stays within 10% of the plain forward (the
  record pass keeps views + the E/O byproducts, no O(in x B) copies;
  this guards against quietly reintroducing them).

``attest_batch`` is timed directly rather than as the difference of two
~30 ms full-pass wall times, whose run-to-run jitter on a shared box is
itself a multiple of the budget being measured.

The bench also re-asserts that the measured path really was the clean
one (zero trips) — a tripping configuration would silently time rung 2
and 3 instead of the budgeted check.
"""

import time

import numpy as np

from repro.integrity.checker import attest_batch
from repro.integrity.workload import build_integrity_worker

DIMS = (768, 768, 768)
BATCH = 256
SEED = 7
N_FORWARD = 8
N_ATTEST = 25
MAX_ENABLED_OVERHEAD = 0.05
MAX_RECORD_OVERHEAD = 0.10


def _tmin(fn, n: int) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_enabled_attestation_under_five_percent(record_report):
    worker = build_integrity_worker(0, DIMS, SEED, with_integrity=True)
    checker = worker.integrity
    acc = worker.acc
    xs = np.random.default_rng(SEED + 1).uniform(-1, 1, (BATCH, DIMS[0]))

    outputs = acc.forward_batch(xs, record=True)  # warmup + attest input

    def attest():
        attest_batch(checker, xs, outputs, worker_id=0, now_s=0.0)

    attest()
    acc.forward_batch(xs)
    wall_plain = _tmin(lambda: acc.forward_batch(xs), N_FORWARD)
    wall_record = _tmin(
        lambda: acc.forward_batch(xs, record=True), N_FORWARD
    )
    wall_attest = _tmin(attest, N_ATTEST)

    # The timed loop must have exercised the clean rung only — a trip
    # would time re-execution and the digital spare, not the budget.
    assert checker.counters.checks > 0
    assert checker.counters.tripped == 0, (
        "attestation tripped during the overhead bench; the measurement "
        "includes escalation rungs and is invalid"
    )

    ratio = wall_attest / wall_plain
    record_ratio = wall_record / wall_plain - 1.0
    record_report(
        "integrity_overhead",
        "\n".join(
            [
                f"forward_batch (B={BATCH}, dims {list(DIMS)}): "
                f"{wall_plain * 1e3:.2f} ms",
                f"forward_batch(record=True): {wall_record * 1e3:.2f} ms "
                f"({record_ratio * +100:+.2f}% vs plain; bar "
                f"{MAX_RECORD_OVERHEAD * 100:.0f}%)",
                f"clean attest_batch: {wall_attest * 1e6:.1f} us/batch "
                f"({ratio * 100:.2f}% of the pass; bar "
                f"{MAX_ENABLED_OVERHEAD * 100:.0f}%)",
            ]
        ),
    )
    assert ratio < MAX_ENABLED_OVERHEAD, (
        f"enabled attestation costs {ratio * 100:.2f}% of a batched "
        f"forward pass (bar {MAX_ENABLED_OVERHEAD * 100:.0f}%)"
    )
    assert record_ratio < MAX_RECORD_OVERHEAD, (
        f"recorded forward costs {record_ratio * 100:.2f}% over the plain "
        f"pass (bar {MAX_RECORD_OVERHEAD * 100:.0f}%); the record path "
        "should keep views, not copies"
    )
