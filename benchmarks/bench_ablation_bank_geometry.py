"""Ablation: weight-bank geometry (J x N) at iso-MRR-count and iso-power.

The paper fixes 16 x 16 banks.  Larger banks amortize BPD/TIA rows over
more MRRs but need more WDM channels (limited by the 1.6 nm spacing within
one FSR) and suffer more from edge-tile waste on small layers; smaller
banks waste row electronics.  This sweep quantifies the trade-off.
"""

from dataclasses import replace

from repro.dataflow.cost_model import PhotonicArch, PhotonicCostModel
from repro.eval.formatting import format_table
from repro.nn import build_model

GEOMETRIES = ((8, 8), (8, 32), (16, 16), (32, 8), (32, 32))


def geometry_sweep(batch: int = 128):
    base = PhotonicArch.trident()
    nets = {m: build_model(m) for m in ("googlenet", "resnet50", "mobilenet_v2")}
    rows = []
    for rows_j, cols_n in GEOMETRIES:
        # Hold total MRR count constant: adjust PE count to keep
        # n_pes * J * N = 44 * 256.
        total_mrrs = 44 * 256
        n_pes = max(1, total_mrrs // (rows_j * cols_n))
        arch = replace(
            base,
            name=f"trident-{rows_j}x{cols_n}",
            bank_rows=rows_j,
            bank_cols=cols_n,
            n_pes=n_pes,
        )
        cm = PhotonicCostModel(arch, batch=batch)
        row = [f"{rows_j}x{cols_n}", n_pes]
        for m, net in nets.items():
            row.append(cm.model_cost(net).inferences_per_second)
        rows.append(row)
    return rows


def test_ablation_bank_geometry(benchmark, record_report):
    rows = benchmark.pedantic(geometry_sweep, rounds=1, iterations=1)
    text = format_table(
        ["bank", "PEs", "googlenet inf/s", "resnet50 inf/s", "mobilenet inf/s"],
        rows,
        title="Ablation: weight-bank geometry at constant total MRRs (11264)",
    )
    record_report("ablation_bank_geometry", text)
    by_geom = {r[0]: r for r in rows}
    # MobileNet (tiny depthwise GEMMs) prefers smaller banks; dense ResNet
    # tolerates the paper's 16x16 well.
    assert by_geom["8x8"][4] > by_geom["32x32"][4]
    # For dense models the geometry is roughly neutral at iso-MRR count
    # (within 2x across the sweep).
    resnet_vals = [r[3] for r in rows]
    assert max(resnet_vals) / min(resnet_vals) < 2.5
