"""Controller-loop overhead gate on the fleet serve path.

The closed-loop controller (docs/ARCHITECTURE.md §14) rides the serving
loop as scheduled tick actions: each tick reads the always-on
:class:`~repro.telemetry.rollup.ServingRollup`, drives the autoscaler,
the degraded-mode ladder, and tenant rebalancing, then schedules the
next tick.  The contract is that *watching* the fleet is nearly free —
the decision loop must cost < 1% of the serve wall — while *changing*
the fleet (cloning workers at commission, hashing bank state at
decommission) is capacity work paid per scaling event and accounted
separately (``provision_wall_s``).

This bench runs the controlled smoke scenario end-to-end and gates
``controller.wall_s / serve_wall`` at < 1%, taking the best of a few
trials so a noisy CI neighbor can't fail the gate.
"""

import time

from repro.fleet import run_fleet_workload, smoke_scenario

MAX_LOOP_RATIO = 0.01
TRIALS = 3


def _one_trial(seed: int):
    t0 = time.perf_counter()
    result = run_fleet_workload(smoke_scenario(seed=seed), controlled=True)
    wall = time.perf_counter() - t0
    return wall, result


def test_controller_loop_under_one_percent(record_report):
    trials = [_one_trial(seed=0) for _ in range(TRIALS)]
    # Best-of-N on the *ratio*: scheduler noise inflates numerator and
    # denominator together, but a single stall inside a tick shouldn't
    # fail the gate when the other trials show the true cost.
    wall, result = min(
        trials, key=lambda t: t[1].controller.wall_s / t[0]
    )
    controller = result.controller
    ratio = controller.wall_s / wall
    ticks = controller.ticks

    record_report(
        "fleet_controller_overhead",
        "\n".join(
            [
                f"controlled smoke run: {wall * 1e3:.0f} ms serve wall, "
                f"{ticks} controller ticks",
                f"decision loop: {controller.wall_s * 1e3:.2f} ms total, "
                f"{controller.wall_s / max(ticks, 1) * 1e6:.1f} us/tick",
                f"provisioning (worker clone + checkpoint digest): "
                f"{controller.provision_wall_s * 1e3:.2f} ms across "
                f"{controller.scale_up_events} up / "
                f"{controller.scale_down_events} down events",
                f"loop ratio: {ratio * 100:.3f}% of serve wall (bar "
                f"{MAX_LOOP_RATIO * 100:.0f}%, best of {TRIALS} trials)",
            ]
        ),
    )
    assert ratio < MAX_LOOP_RATIO, (
        f"controller decision loop costs {ratio * 100:.2f}% of serve wall "
        f"(bar {MAX_LOOP_RATIO * 100:.0f}%)"
    )
    # The run the gate graded must still be a real controlled run.
    assert controller.stopped
    assert controller.scale_up_events > 0
    assert result.report.conservation_ok()


def test_provisioning_accounted_separately():
    """Actuation payloads land in provision_wall_s, not the loop wall."""
    _, result = _one_trial(seed=0)
    controller = result.controller
    assert controller.provision_wall_s > 0.0
    report = controller.report()
    assert report["wall_s"] == controller.wall_s
    assert report["provision_wall_s"] == controller.provision_wall_s
