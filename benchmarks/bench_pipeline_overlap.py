"""Pipeline-overlap throughput gate on the sharded serving path.

Serves the same seeded request burst on one model sharded across a
pipeline of accelerators twice — once with the pipe held exclusive per
batch (serialized) and once with overlapped stage execution (stage k of
batch i concurrent with stage k-1 of batch i+1) — and requires the
overlapped makespan to be strictly smaller.  Virtual-clock time, so the
gate is deterministic and host-speed independent.  The plan's analytic
``fill + (n-1) * bottleneck`` prediction is recorded alongside the
measured speedup as a cross-check on the cost model.
"""

from repro.serving import ShardWorkloadConfig, makespan_s, run_shard_workload
from repro.serving.shard_workload import plan_workload

CONFIG = ShardWorkloadConfig()
MIN_SPEEDUP = 1.2


def test_overlap_beats_serialized_stage_execution(record_report):
    plan = plan_workload(CONFIG)
    overlap_report, _, _ = run_shard_workload(CONFIG, overlap=True)
    serial_report, _, _ = run_shard_workload(CONFIG, overlap=False)
    assert overlap_report.completion_rate == 1.0
    assert serial_report.completion_rate == 1.0

    overlap_makespan = makespan_s(overlap_report)
    serial_makespan = makespan_s(serial_report)
    speedup = serial_makespan / overlap_makespan
    n = CONFIG.n_requests
    predicted = plan.overlap_speedup(
        -(-n // CONFIG.server.max_batch)  # batches in the burst
    )

    record_report(
        "pipeline_overlap",
        "\n".join(
            [
                f"model {list(CONFIG.dims)} across {plan.n_stages} stages "
                f"({plan.n_accelerators} accelerators), "
                f"{n} requests, batch cap {CONFIG.server.max_batch}",
                f"serialized makespan: {serial_makespan * 1e6:.2f} us "
                f"({n / serial_makespan:.3e} req/s virtual)",
                f"overlapped makespan: {overlap_makespan * 1e6:.2f} us "
                f"({n / overlap_makespan:.3e} req/s virtual)",
                f"measured speedup: {speedup:.2f}x "
                f"(plan predicts {predicted:.2f}x for back-to-back batches; "
                f"bar {MIN_SPEEDUP:.1f}x)",
            ]
        ),
    )
    assert speedup >= MIN_SPEEDUP, (
        f"overlap gains only {speedup:.2f}x over serialized stages "
        f"(bar {MIN_SPEEDUP:.1f}x)"
    )
