"""Ablation: photonic GST activation vs digital (ADC + memory round-trip).

Quantifies the paper's second contribution in isolation: keep everything
about Trident fixed, but route layer outputs through the baseline-style
ADC -> memory -> digital activation -> DAC path instead of the GST cell.
"""

from dataclasses import replace

from repro.baselines.deap_cnn import ADC_ENERGY_J, DAC_ENERGY_J
from repro.dataflow.cost_model import PhotonicArch, PhotonicCostModel
from repro.eval.formatting import format_table
from repro.nn import build_model
from repro.nn.models import PAPER_MODELS


def activation_ablation(batch: int = 128):
    base = PhotonicArch.trident()
    digital = replace(
        base,
        name="trident-digital-act",
        digital_activation=True,
        adc_energy_per_sample_j=ADC_ENERGY_J,
        dac_energy_per_sample_j=DAC_ENERGY_J,
    )
    rows = []
    for model in PAPER_MODELS:
        net = build_model(model)
        photonic = PhotonicCostModel(base, batch=batch).model_cost(net)
        adc = PhotonicCostModel(digital, batch=batch).model_cost(net)
        rows.append(
            [
                model,
                photonic.energy_j * 1e3,
                adc.energy_j * 1e3,
                (adc.energy_j / photonic.energy_j - 1) * 100,
                adc.energy_component("conversion") * 1e3,
            ]
        )
    return rows


def test_ablation_photonic_activation(benchmark, record_report):
    rows = benchmark.pedantic(activation_ablation, rounds=1, iterations=1)
    text = format_table(
        ["model", "photonic act (mJ)", "digital act (mJ)", "overhead %", "conversion (mJ)"],
        rows,
        title="Ablation: GST photonic activation vs ADC/digital activation",
    )
    record_report("ablation_activation", text)
    for row in rows:
        # Digital activation always costs more energy.
        assert row[2] > row[1], row
        # And the overhead is material (the HolyLight argument, ref [23]).
        assert row[3] > 1.0, row
