"""Bench: regenerate Fig 4 (photonic accelerators total energy, 5 CNNs)."""

from conftest import comparison_text

from repro.eval.figures import fig4_photonic_energy
from repro.eval.formatting import format_table


def test_fig4_energy(benchmark, record_report):
    report = benchmark.pedantic(fig4_photonic_energy, rounds=1, iterations=1)
    models = list(report.series["trident"])
    rows = [
        [arch] + [series[m] * 1e3 for m in models]
        for arch, series in report.series.items()
    ]
    text = format_table(
        ["architecture"] + [f"{m} (mJ)" for m in models], rows, title=report.title
    )
    record_report("fig4_energy", text + comparison_text(report.comparisons))
    # Average improvements within 2 % of the paper's 16.4/43.5/43.4.
    assert report.max_relative_error() < 0.02
    # Trident wins on every model against every photonic baseline.
    trident = report.series["trident"]
    for name, series in report.series.items():
        if name == "trident":
            continue
        for m in models:
            assert series[m] > trident[m], (name, m)
