"""Analysis bench: chip power vs time from the simulated tile schedule.

Dynamically regenerates the paper's Sec. IV power story: while banks are
being written the chip draws its full sized power (44 x 0.676 W ~ 29.7 W);
once the GST holds the weights, power collapses to 44 x 0.113 W ~ 5 W
(the "83.34 % drop").  The trace also proves the 30 W budget is respected
at every instant, not just on average.
"""

import numpy as np
import pytest

from repro.dataflow.cost_model import PhotonicArch
from repro.dataflow.power_trace import power_trace
from repro.dataflow.schedule_sim import simulate_layer
from repro.dataflow.tiling import TileSchedule
from repro.eval.formatting import format_table
from repro.nn.layers import GEMMShape


def trace_for_resident_layer():
    """One full-bank tile set with long streaming (weights pre-loaded)."""
    arch = PhotonicArch.trident()
    schedule = TileSchedule(GEMMShape(m=44 * 16, k=16, n=5000), 16, 16)
    sim = simulate_layer("resident", schedule, arch, batch=1)
    trace = power_trace(sim, arch, n_samples=4000)
    return arch, sim, trace


def test_analysis_power_trace(benchmark, record_report):
    arch, sim, trace = benchmark.pedantic(
        trace_for_resident_layer, rounds=1, iterations=1
    )
    # Decimated trace rows for the artifact.
    idx = np.linspace(0, trace.times_s.size - 1, 25).astype(int)
    rows = [[trace.times_s[i] * 1e6, trace.power_w[i]] for i in idx]
    text = format_table(
        ["time (us)", "chip power (W)"],
        rows,
        title="Chip power trace: write burst then non-volatile streaming",
    )
    text += (
        f"\n\npeak {trace.peak_w:.2f} W (budget 30 W); streaming plateau "
        f"{arch.n_pes * arch.streaming_power_pe_w:.2f} W — the Table III "
        "0.67 W -> 0.11 W per-PE drop, chip-wide."
    )
    record_report("analysis_power_trace", text)

    assert trace.peak_w <= 30.0
    assert trace.peak_w == pytest.approx(arch.n_pes * arch.sizing_power_pe_w, rel=0.01)
    plateau_region = trace.power_w[int(0.5 * len(trace.power_w)) : int(0.9 * len(trace.power_w))]
    assert np.allclose(plateau_region, arch.n_pes * arch.streaming_power_pe_w)
    drop = 1 - arch.streaming_power_pe_w / arch.sizing_power_pe_w
    assert drop == pytest.approx(0.8334, abs=0.001)
