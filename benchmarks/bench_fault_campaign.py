"""Analysis bench: fault campaign — repair recovery and overhead.

The headline robustness claim for the fault-management subsystem: at a
damaging stuck-cell rate (>= 5 %, stuck at weight +1), the spare-remap
repair ladder recovers at least half of the accuracy the unrepaired
accelerator loses, pays for every repair through the event accounting,
and never breaks batched/per-sample execution parity.
"""

from repro.eval.formatting import format_table
from repro.faults import CampaignConfig, run_campaign


def fault_campaign():
    return run_campaign(CampaignConfig())


def test_fault_campaign(benchmark, record_report):
    report = benchmark.pedantic(fault_campaign, rounds=1, iterations=1)
    record_report("fault_campaign", report.render())

    config = report.config
    # Parity: repair machinery must not desynchronize the two engines.
    assert report.parity_ok

    damaging = [
        f
        for f in config.fault_fractions
        if f >= 0.05
        and report.clean_accuracy - report.mean_accuracy(f, "none") > 0.01
    ]
    assert damaging, "campaign produced no damaging fault rate to repair"
    for fraction in damaging:
        # Headline: spare-remap (+retry) claws back >= half the loss.
        assert report.recovery(fraction, "spare") >= 0.5
        # Repair is charged: deploy energy and time rise above no-repair.
        energy, time_s = report.repair_overhead(fraction, "spare")
        assert energy > 0 and time_s > 0
        # Retry alone cannot fix stuck cells — and costs energy trying.
        assert (
            report.mean_accuracy(fraction, "retry")
            <= report.mean_accuracy(fraction, "spare") + 1e-9
        )

    # Repair never makes things worse than no repair (graceful degradation).
    for fraction in config.fault_fractions:
        none_acc = report.mean_accuracy(fraction, "none")
        for policy in ("spare", "remap"):
            assert report.mean_accuracy(fraction, policy) >= none_acc - 0.02

    # In-situ training survived every run.
    rows = [
        [r.fraction * 100, r.policy, r.trial, r.train_loss_first, r.train_loss_last]
        for r in report.rows
    ]
    assert all(r[3] == r[3] and r[4] == r[4] for r in rows)  # no NaNs
    record_report(
        "fault_campaign_training",
        format_table(
            ["stuck (%)", "policy", "trial", "first loss", "last loss"],
            rows,
            title="In-situ training survival under faults + repair",
        ),
    )
