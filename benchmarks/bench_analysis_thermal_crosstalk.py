"""Analysis bench: thermal crosstalk vs weight resolution.

Regenerates the mechanism behind Sec. II-B's "thermally tuned MRRs are
limited to 6 bits": heater leakage is a programming-pattern-dependent
weight error that caps resolution, while GST's attenuation-based weights
leave resonances parked (zero thermal-coupling error, full 8 bits).
"""

from repro.devices.thermal_crosstalk import ThermalCrosstalkModel, thermal_resolution_sweep
from repro.eval.formatting import format_table


def test_analysis_thermal_crosstalk(benchmark, record_report):
    rows = benchmark(thermal_resolution_sweep)
    text = format_table(
        ["adjacent coupling", "worst-case weight error", "usable bits"],
        [[r["adjacent_coupling"], r["worst_case_error"], r["usable_bits"]]
         for r in rows],
        title="Thermal heater crosstalk vs usable weight resolution (16 rings)",
    )
    default = ThermalCrosstalkModel()
    text += (
        f"\n\ndefault operating point (0.35% adjacent coupling): "
        f"{default.usable_bits()} bits — the paper's thermal-bank figure.\n"
        f"GST banks shift no resonances: this error term is identically zero."
    )
    record_report("analysis_thermal_crosstalk", text)
    by_coupling = {r["adjacent_coupling"]: r["usable_bits"] for r in rows}
    assert by_coupling[0.0] == 16  # GST-like: no thermal error
    assert by_coupling[0.0035] == 6  # the paper's thermal operating point
    bits = [r["usable_bits"] for r in rows]
    assert bits == sorted(bits, reverse=True)
